package ooo

import (
	"reflect"
	"testing"
	"unsafe"

	"helios/internal/fusion"
)

// setNonZero writes a non-zero value of v's type through v, recursing
// into structs and arrays so every leaf is non-zero. Unsupported kinds
// fail the test: a new pUop field of an exotic type must extend this
// helper before it can ride through the arena.
func setNonZero(t *testing.T, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(1)
	case reflect.String:
		v.SetString("x")
	case reflect.Ptr:
		v.Set(reflect.New(v.Type().Elem()))
	case reflect.Slice:
		v.Set(reflect.MakeSlice(v.Type(), 1, 1))
	case reflect.Map:
		v.Set(reflect.MakeMap(v.Type()))
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			// Unexported fields come back read-only even under an
			// addressable parent; re-derive a settable view of the same
			// memory.
			f := v.Field(i)
			setNonZero(t, reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem())
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			setNonZero(t, v.Index(i))
		}
	default:
		t.Fatalf("setNonZero: unsupported kind %v (%v): extend the helper", v.Kind(), v.Type())
	}
}

// TestUopResetComplete pins the arena's recycling contract: reset must
// wipe EVERY pUop field back to its zero value, keeping only the arena
// bookkeeping (gen, bumped so stale generation-checked references miss;
// pooled, the double-release guard). The test writes every field —
// exported or not — non-zero via unsafe reflection, so a future field
// added to pUop cannot silently leak state into the next incarnation:
// either reset's whole-struct assignment wipes it (it does today, by
// construction) or this test fails the moment someone narrows reset to
// a field list.
func TestUopResetComplete(t *testing.T) {
	u := &pUop{}
	rv := reflect.ValueOf(u).Elem()
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		// Unexported fields are not settable through the exported API;
		// re-derive an addressable view of the same memory.
		setNonZero(t, reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem())
	}
	// The helper must have set gen itself to 1; remember it for the bump
	// check below.
	genBefore := u.gen

	u.pooled = false // release() requires a live µ-op
	var a uopArena
	a.release(u)

	keep := map[string]bool{"gen": true, "pooled": true}
	ty := rv.Type()
	for i := 0; i < rv.NumField(); i++ {
		name := ty.Field(i).Name
		f := reflect.NewAt(rv.Field(i).Type(), unsafe.Pointer(rv.Field(i).UnsafeAddr())).Elem()
		if keep[name] {
			if f.IsZero() {
				t.Errorf("reset cleared arena bookkeeping field %q", name)
			}
			continue
		}
		if !f.IsZero() {
			t.Errorf("reset leaked field %q across recycle: %v", name, f.Interface())
		}
	}
	if u.gen != genBefore+1 {
		t.Errorf("reset gen = %d, want %d (must bump so stale references miss)", u.gen, genBefore+1)
	}
	if !u.pooled {
		t.Error("reset must leave the µ-op marked pooled (double-release guard)")
	}
}

// TestArenaRecycle checks the free-list round trip: a released µ-op is
// handed out again with a bumped generation and invalid register slots,
// and releasing it twice panics (the run loop converts that to a
// SimError).
func TestArenaRecycle(t *testing.T) {
	var a uopArena
	u := a.alloc()
	u.seq = 42
	gen := u.gen
	a.release(u)

	u2 := a.alloc()
	if u2 != u {
		t.Fatalf("alloc after release returned a fresh µ-op, want the recycled one")
	}
	if u2.gen != gen+1 {
		t.Errorf("recycled gen = %d, want %d", u2.gen, gen+1)
	}
	if u2.seq != 0 || u2.pooled {
		t.Errorf("recycled µ-op not reset: seq=%d pooled=%v", u2.seq, u2.pooled)
	}
	for _, p := range u2.srcPhys {
		if p != invalidReg {
			t.Errorf("srcPhys not re-marked invalid: %v", u2.srcPhys)
		}
	}

	a.release(u2)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	a.release(u2)
}

// TestEventWheelGrow schedules completions past the wheel's horizon and
// checks that growing preserves every pending event at its cycle.
func TestEventWheelGrow(t *testing.T) {
	var a uopArena
	w := newEventWheel()
	horizon := uint64(len(w.slots))

	near := a.alloc()
	near.completeAt = 3
	w.schedule(near, near.completeAt, 0)

	far := a.alloc()
	far.completeAt = horizon + 5 // would alias cycle 5 without growth
	w.schedule(far, far.completeAt, 0)

	if uint64(len(w.slots)) <= horizon {
		t.Fatalf("wheel did not grow past horizon %d", horizon)
	}
	if evs := w.drain(3); len(evs) != 1 || evs[0].u != near {
		t.Errorf("drain(3) = %v, want the near µ-op", evs)
	}
	if evs := w.drain(5); len(evs) != 0 {
		t.Errorf("drain(5) = %v, want empty (far event must not alias)", evs)
	}
	if evs := w.drain(horizon + 5); len(evs) != 1 || evs[0].u != far {
		t.Errorf("drain(%d) = %v, want the far µ-op", horizon+5, evs)
	}
}

// TestEventWheelStaleGeneration checks the wheel's stale-reference
// protocol: a drained event whose generation no longer matches its µ-op
// (flushed, released, recycled mid-flight) must be detectable.
func TestEventWheelStaleGeneration(t *testing.T) {
	var a uopArena
	w := newEventWheel()
	u := a.alloc()
	u.completeAt = 7
	w.schedule(u, u.completeAt, 0)
	a.release(u) // flush path: the event is still in the wheel

	evs := w.drain(7)
	if len(evs) != 1 {
		t.Fatalf("drain(7) = %v, want one event", evs)
	}
	if evs[0].gen == evs[0].u.gen {
		t.Error("released µ-op's event still passes the generation check")
	}
}

// TestPairingRingExactSeq checks that the ring only returns a pairing
// for the exact tail sequence it was stored under: an aliasing sequence
// (same slot, different seq) must miss, and a leaked entry must be
// safely overwritten by a later pairing landing in the same slot.
func TestPairingRingExactSeq(t *testing.T) {
	r := newPairingRing(4)
	size := uint64(len(r.slots))

	r.put(fusion.Pairing{TailSeq: 10})
	if _, ok := r.take(10 + size); ok {
		t.Error("take(aliasing seq) hit, want miss")
	}
	if _, ok := r.take(10); !ok {
		t.Error("take(exact seq) missed")
	}
	if _, ok := r.take(10); ok {
		t.Error("take consumed entry still present")
	}

	// A dead (never-taken) entry is overwritten by a slot collision.
	r.put(fusion.Pairing{TailSeq: 20})
	r.put(fusion.Pairing{TailSeq: 20 + size})
	if _, ok := r.take(20); ok {
		t.Error("overwritten entry still taken")
	}
	if p, ok := r.take(20 + size); !ok || p.TailSeq != 20+size {
		t.Errorf("take(%d) = %+v ok=%v, want the overwriting pairing", 20+size, p, ok)
	}

	r.put(fusion.Pairing{TailSeq: 30})
	r.clear()
	if _, ok := r.take(30); ok {
		t.Error("take after clear hit, want miss")
	}
}
