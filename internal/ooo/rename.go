package ooo

import (
	"helios/internal/emu"
	"helios/internal/fusion"
	"helios/internal/isa"
	"helios/internal/stats"
	"helios/internal/uop"
)

// renameDispatchStage models Rename and Dispatch: up to RenameWidth µ-ops
// per cycle leave the allocation queue, acquire physical registers and
// backend entries (ROB/IQ/LQ/SQ), stalling in order on the first exhausted
// resource. NCSF tail nucleii flow through here to validate or unfuse
// their pending NCSF'd µ-op (Section IV-B2), consuming dispatch slots.
//
// The stage also performs the top-down slot accounting (DESIGN.md §12):
// each of the DispatchWidth budget slots is attributed to exactly one
// bucket — claimed slots to (fused-)retiring, tagged on the µ-op for
// later reclassification; unclaimed slots to the stalling resource, the
// post-flush recovery, or the frontend. The behavioral loop is
// unchanged (it still processes up to RenameWidth µ-ops): accounting
// only clamps or pads to the DispatchWidth budget, it never alters
// timing.
func (p *Pipeline) renameDispatchStage() {
	td := &p.st.TopDown
	td.Cycles++
	budget := int(td.SlotsPerCycle)
	used := 0
	// account attributes one budget slot, tagging the µ-op (when there
	// is one) so squash/unfuse can move the slot later. When
	// RenameWidth exceeds DispatchWidth, work past the budget stays
	// unaccounted (tdBucket -1) — the budget is the accounting unit.
	account := func(u *pUop, b stats.TDBucket) {
		if used >= budget {
			return
		}
		used++
		td.Add(b, 1)
		if u != nil {
			u.tdBucket = int8(b)
		}
	}

	slots := p.cfg.RenameWidth
	stall := stallNone
loop:
	for slots > 0 {
		u := p.aq.front()
		if u == nil {
			break
		}
		switch {
		case u.isTailNucleus:
			var bucket stats.TDBucket
			var consumed bool
			slots, bucket, consumed = p.processTailNucleus(u, slots)
			if consumed {
				account(nil, bucket)
				p.tdRecovering = false
			}
		default:
			var ok bool
			ok, stall = p.tryAllocate(u)
			if !ok {
				p.bumpStall(stall)
				break loop
			}
			u.renamedAt = p.cycle
			p.renameUop(u)
			p.dispatchUop(u)
			p.aq.pop()
			slots--
			if u.kind != uop.FuseNone && !u.unfused {
				account(u, stats.TDFusedRetiring)
			} else {
				account(u, stats.TDRetiring)
			}
			p.tdRecovering = false
		}
	}

	// Attribute the budget slots no µ-op claimed this cycle.
	if used < budget {
		leftover := uint64(budget - used)
		switch {
		case stall != stallNone:
			td.Add(p.tdStallBucket(stall), leftover)
		case p.aq.front() != nil:
			// Supply was available but RenameWidth ran out below the
			// dispatch budget: the core's own width is the limiter.
			td.Add(stats.TDBackendCore, leftover)
		case p.tdRecovering:
			// AQ empty because a flush killed it; the frontend is
			// refilling — squash recovery, not a frontend deficiency.
			td.Add(stats.TDBadSpeculation, leftover)
		case used > 0:
			td.Add(stats.TDFrontendBandwidth, leftover)
		default:
			td.Add(stats.TDFrontendLatency, leftover)
		}
	}

	if stall != stallNone {
		p.breakNCSFDeadlock()
	}
	p.renameStalled = stall != stallNone
}

// breakNCSFDeadlock resolves the circular wait that arises when a pending
// NCSF'd µ-op reaches the ROB head while the backend is full: the head
// cannot issue until its tail renames, the tail cannot rename until the
// backend drains, and the backend cannot drain past the head. The paper's
// configuration avoids this by sizing (ROB 352 >> max distance 64), but a
// robust implementation unfuses the blocking head, exactly as the other
// rename-time repair cases do.
func (p *Pipeline) breakNCSFDeadlock() {
	h := p.rob.front()
	if h == nil || !h.isNCSF || h.validated || h.unfused || h.st != stDispatched {
		return
	}
	p.st.UnfusedAtRename++
	p.st.UnfuseReasons[0]++ // structural (window) bucket
	if h.usedPred && p.fp != nil && h.tailR != nil {
		p.fp.Mispredict(h.tailR.PC, h.predGhr, h.pred)
	}
	p.unfuseAtRename(h, nil)
}

// processTailNucleus handles a tail nucleus reaching Rename. It validates
// or unfuses the pending NCSF'd µ-op and returns the remaining slots,
// plus the top-down bucket of the consumed slot when one was consumed:
// validation retires fused work, an unfuse fix-up is repair for a wrong
// fusion speculation.
func (p *Pipeline) processTailNucleus(u *pUop, slots int) (int, stats.TDBucket, bool) {
	head := u.headUop
	if head == nil || head.gen != u.headGen ||
		head.st == stKilled || head.unfused || head.kind == uop.FuseNone {
		// The pairing was cancelled (nest limit, flush, a head already
		// committed+recycled after an unfuse, ...): the tail is an
		// ordinary µ-op again.
		u.isTailNucleus = false
		u.headUop = nil
		return slots, 0, false
	}
	if head.st == stDecoded {
		// The head has not renamed yet (it is older so this only happens
		// transiently); treat the pair as cancelled to avoid deadlock.
		p.cancelNCSF(head, u)
		return slots, 0, false
	}

	span := p.span(head.seq, u.seq)
	reason := -1
	switch {
	case span == nil:
		reason = 0 // window
	case fusion.CatalystHasSerializing(span):
		reason = 1
	case head.isStore() && fusion.CatalystHasStore(span):
		reason = 2
	case head.isStore() && catalystWritesReg(span, head.r.Inst.Rs1):
		// The tail's base value differs from the head's: a DBR store
		// pair, which Helios does not support (it would need a fourth
		// source register, Section IV-B).
		reason = 3
	case head.isLoad() && fusion.TailDependsOnHead(span):
		reason = 4 // deadlock
	}
	if reason >= 0 {
		p.st.UnfuseReasons[reason]++
		p.st.UnfusedAtRename++
		// Resetting the FP entry's confidence lets the predictor abandon
		// structurally illegal pairings and rediscover a legal partner
		// through the UCH, rather than re-proposing the same pair forever.
		if head.usedPred && p.fp != nil && head.tailR != nil {
			p.fp.Mispredict(head.tailR.PC, head.predGhr, head.pred)
		}
		p.unfuseAtRename(head, u)
		// The tail becomes an ordinary µ-op; the fix-up consumed a slot.
		u.isTailNucleus = false
		u.headUop = nil
		return slots - 1, stats.TDBadSpeculation, true
	}

	// Validation: resolve the tail's sources with the *current* RAT (the
	// catalyst has renamed by now, so RaW hazards resolve correctly) and
	// perform the deferred tail destination rename.
	p.resolveTailSources(head, u)
	p.finishTailDest(head, u)
	head.validated = true
	p.removePendingNCSF(head)
	u.st = stKilled // the tail nucleus leaves the pipeline
	p.aq.pop()
	p.arena.release(u) // never dispatched: the AQ held the last reference
	return slots - 1, stats.TDFusedRetiring, true
}

// catalystWritesReg reports whether any catalyst instruction writes r.
func catalystWritesReg(span []emu.Retired, r isa.Reg) bool {
	for _, rec := range span[1 : len(span)-1] {
		if rec.Inst.WritesReg(r) {
			return true
		}
	}
	return false
}

// cancelNCSF reverts a speculative NCSF pairing before the head renamed.
func (p *Pipeline) cancelNCSF(head, tail *pUop) {
	head.kind = uop.FuseNone
	head.tailR = nil
	head.isNCSF = false
	head.validated = false
	head.usedPred = false
	if tail != nil {
		tail.isTailNucleus = false
		tail.headUop = nil
	}
}

// tryAllocate checks that every resource the µ-op needs is available and
// names the first blocking resource when it is not.
func (p *Pipeline) tryAllocate(u *pUop) (bool, stallKind) {
	if len(p.freeList) < p.destCount(u) {
		return false, stallFreeList
	}
	if p.rob.full() {
		return false, stallROB
	}
	if len(p.iq) >= p.cfg.IQSize {
		return false, stallIQ
	}
	if u.isLoad() && len(p.lq) >= p.cfg.LQSize {
		return false, stallLQ
	}
	if u.isStore() && len(p.sq) >= p.cfg.SQSize {
		return false, stallSQ
	}
	return true, stallNone
}

// destCount returns how many physical destination registers the µ-op
// needs.
func (p *Pipeline) destCount(u *pUop) int {
	n := 0
	if _, ok := uop.Dest(u.r.Inst); ok {
		n++
	}
	if u.kind != uop.FuseNone && u.tailR != nil {
		if d, ok := uop.Dest(u.tailR.Inst); ok {
			// Idiom fusion reuses the head's destination register.
			if !(u.kind == uop.FuseIdiom && u.r.Inst.Rd == d) {
				n++
			}
		}
	}
	return n
}

// renameUop resolves sources through the RAT and allocates destinations.
func (p *Pipeline) renameUop(u *pUop) {
	// NCSF heads beyond the nesting limit behave as unfused (paper): the
	// pairing is cancelled and the tail reverted when it arrives.
	if u.isNCSF && !u.validated {
		if len(p.pendingNCSF) >= p.cfg.MaxNCSFNest {
			p.st.NestLimitDrops++
			p.cancelNCSF(u, nil) // the tail detects the broken link itself
		} else {
			p.pendingNCSF = append(p.pendingNCSF, u)
		}
	}

	// Collect architectural sources. The fixed-size buffer keeps this off
	// the heap: a µ-op carries at most 3 renamed sources (srcPhys), and
	// the one-past slot turns an impossible fourth into an index panic
	// exactly where the old slice version would have overrun srcPhys.
	var srcs [4]isa.Reg
	nSrcs := 0
	addSrc := func(r isa.Reg) {
		if r == isa.Zero {
			return
		}
		for _, s := range srcs[:nSrcs] {
			if s == r {
				return
			}
		}
		srcs[nSrcs] = r
		nSrcs++
	}
	in := u.r.Inst
	if in.Op.HasRs1() {
		addSrc(in.Rs1)
	}
	if in.Op.HasRs2() {
		addSrc(in.Rs2)
	}
	tailSrcSlots := 0
	if u.kind != uop.FuseNone && u.tailR != nil {
		ti := u.tailR.Inst
		switch {
		case u.kind == uop.FuseIdiom:
			// The intermediate register (head's rd) is internal.
			if ti.Op.HasRs1() && ti.Rs1 != in.Rd {
				addSrc(ti.Rs1)
			}
			if ti.Op.HasRs2() && ti.Rs2 != in.Rd {
				addSrc(ti.Rs2)
			}
		case u.isNCSF && !u.validated:
			// Tail sources resolve at tail rename (RaW safety): reserve
			// slots.
			if ti.Op.HasRs1() && ti.Rs1 != isa.Zero {
				tailSrcSlots++
			}
			if ti.Op.HasRs2() && ti.Rs2 != isa.Zero {
				tailSrcSlots++
			}
		default:
			// Consecutive pair: the RAT is current for the tail too.
			if ti.Op.HasRs1() {
				addSrc(ti.Rs1)
			}
			if ti.Op.HasRs2() {
				addSrc(ti.Rs2)
			}
		}
	}

	u.numSrc = 0
	u.ownSrcs = int8(nSrcs)
	u.pendSrcs = 0
	for _, s := range srcs[:nSrcs] {
		preg := p.rat[s]
		slot := int(u.numSrc)
		u.srcPhys[slot] = preg
		u.numSrc++
		if !p.regReady[preg] {
			u.pendSrcs++
			p.waiters[preg] = append(p.waiters[preg], waiter{u: u, slot: slot, gen: u.gen})
		}
	}
	for i := 0; i < tailSrcSlots && int(u.numSrc) < len(u.srcPhys); i++ {
		u.srcPhys[u.numSrc] = srcPending
		u.numSrc++
	}

	// Destinations: head first, then tail (program order).
	u.numDst = 0
	if d, ok := uop.Dest(u.r.Inst); ok {
		p.allocDest(u, d, true)
	}
	if u.kind != uop.FuseNone && u.tailR != nil {
		if d, ok := uop.Dest(u.tailR.Inst); ok {
			if u.kind == uop.FuseIdiom && d == u.r.Inst.Rd && u.numDst > 0 {
				// Same register: one physical destination serves both.
			} else {
				p.allocDest(u, d, !u.isNCSF || u.validated)
			}
		}
	}
}

// allocDest allocates a physical register for arch register d. When
// updateRAT is false the mapping is deferred (NCSF tail destination, kept
// in the rename-side buffer until the tail nucleus renames).
func (p *Pipeline) allocDest(u *pUop, d isa.Reg, updateRAT bool) {
	preg := p.freeList[len(p.freeList)-1]
	p.freeList = p.freeList[:len(p.freeList)-1]
	p.regReady[preg] = false
	p.waiters[preg] = p.waiters[preg][:0]
	slot := int(u.numDst)
	u.dstPhys[slot] = preg
	u.dstArch[slot] = uint8(d)
	u.oldPhys[slot] = p.rat[d]
	u.numDst++
	if updateRAT {
		p.rat[d] = preg
	}
}

// resolveTailSources fills the head's reserved source slots using the
// current RAT (tail rename time).
func (p *Pipeline) resolveTailSources(head, tail *pUop) {
	ti := tail.r.Inst
	var archSrcs []isa.Reg
	if ti.Op.HasRs1() && ti.Rs1 != isa.Zero {
		archSrcs = append(archSrcs, ti.Rs1)
	}
	if ti.Op.HasRs2() && ti.Rs2 != isa.Zero {
		archSrcs = append(archSrcs, ti.Rs2)
	}
	si := 0
	for slot := 0; slot < int(head.numSrc); slot++ {
		if head.srcPhys[slot] != srcPending {
			continue
		}
		if si >= len(archSrcs) {
			head.srcPhys[slot] = invalidReg
			continue
		}
		preg := p.rat[archSrcs[si]]
		si++
		head.srcPhys[slot] = preg
		if !p.regReady[preg] {
			head.pendSrcs++
			p.waiters[preg] = append(p.waiters[preg], waiter{u: head, slot: slot, gen: head.gen})
		}
	}
}

// finishTailDest performs the deferred RAT update for the tail nucleus's
// destination register (in-order destination renaming, Section IV-B2).
func (p *Pipeline) finishTailDest(head, tail *pUop) {
	if d, ok := uop.Dest(tail.r.Inst); ok && head.numDst > 1 {
		slot := int(head.numDst) - 1
		head.oldPhys[slot] = p.rat[d]
		p.rat[d] = head.dstPhys[slot]
	}
}

// unfuseAtRename undoes a pending NCSF'd µ-op in place: the head reverts
// to a single access, reserved tail resources are released.
func (p *Pipeline) unfuseAtRename(head, tail *pUop) {
	head.unfused = true
	head.validated = true
	// The head now retires one instruction, not two: its dispatch slot
	// moves from fused-retiring back to plain retiring.
	if head.tdBucket == int8(stats.TDFusedRetiring) {
		p.tdReclassify(head, stats.TDRetiring)
	}
	p.removePendingNCSF(head)
	// Release the tail's physical destination (it was never in the RAT).
	if head.numDst > 1 {
		slot := int(head.numDst) - 1
		preg := head.dstPhys[slot]
		p.regReady[preg] = true
		p.freeList = append(p.freeList, preg)
		head.dstPhys[slot] = invalidReg
		head.numDst--
	}
	// Drop reserved tail source slots.
	for slot := 0; slot < int(head.numSrc); slot++ {
		if head.srcPhys[slot] == srcPending {
			head.srcPhys[slot] = invalidReg
		}
	}
}

func (p *Pipeline) removePendingNCSF(head *pUop) {
	for i, h := range p.pendingNCSF {
		if h == head {
			//helios:hotalloc-ok in-place compaction into the same backing array; length only shrinks
			p.pendingNCSF = append(p.pendingNCSF[:i], p.pendingNCSF[i+1:]...)
			return
		}
	}
}

// dispatchUop inserts the renamed µ-op into the backend structures.
func (p *Pipeline) dispatchUop(u *pUop) {
	u.st = stDispatched
	p.rob.push(u)
	p.iq = append(p.iq, u)
	if u.isLoad() {
		p.lq = append(p.lq, u)
		if dep, ok := p.storeSets.DispatchLoad(u.r.PC); ok {
			u.waitStore = true
			u.waitStoreSeq = dep
		}
	}
	if u.isStore() {
		p.sq = append(p.sq, u)
		p.storeSets.DispatchStore(u.r.PC, u.seq)
	}
}
