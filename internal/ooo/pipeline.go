package ooo

import (
	"context"
	"fmt"
	"math/rand"

	"helios/internal/branch"
	"helios/internal/cache"
	"helios/internal/emu"
	"helios/internal/fusion"
	"helios/internal/helios"
	"helios/internal/isa"
	"helios/internal/memdep"
	"helios/internal/obs"
	"helios/internal/trace"
)

// Pipeline is the cycle-level core model.
type Pipeline struct {
	cfg Config
	mem *cache.Hierarchy

	// Instruction supply: the committed-path stream in program order,
	// either a live emulator or a recorded trace replay cursor.
	src        trace.Source
	streamDone bool
	streamErr  error         // emulation fault that ended the stream
	window     []emu.Retired // fetched records not yet committed
	windowBase uint64        // seq of window[0]
	nextFetch  uint64        // next seq to decode
	srcNextSeq uint64        // expected seq of the next source record
	srcStarted bool          // first record pulled (srcNextSeq valid)

	// Frontend.
	ghr           branch.History
	tage          *branch.TAGE
	btb           *branch.BTB
	ras           *branch.RAS
	fetchStalled  bool   // waiting on a mispredicted branch to resolve
	fetchResumeAt uint64 // cycle at which fetch may resume
	fetchHeldBy   uint64 // seq of the branch fetch is stalled on
	aq            *uopRing

	// I-cache fetch stall.
	icacheReadyAt uint64
	lastFetchLine uint64

	// Rename.
	rat      [32]int32
	freeList []int32
	regReady []bool
	waiters  []waiterList

	// Committed architectural state for flush recovery: mapping plus the
	// sequence number of the youngest committed writer per arch register.
	cRAT       [32]int32
	lastWriter [32]int64

	// Pending NCSF'd µ-ops: head renamed, tail not yet (paper: ≤ 2).
	pendingNCSF []*pUop

	// Backend. Completions are scheduled on the event wheel (slice
	// indexed by cycle) rather than a map keyed by completion cycle.
	rob       *uopRing
	iq        []*pUop
	iqScratch []*pUop
	lq        []*pUop
	sq        []*pUop
	events    *eventWheel

	// µ-op recycling (DESIGN.md §13): every pUop is drawn from and
	// returned to the arena; deadUops is flushFrom's deferred-release
	// scratch (killed µ-ops must outlive the queue filters that still
	// inspect their fields).
	arena      uopArena
	fetchGroup []*pUop // frontendStage decode-group scratch
	deadUops   []*pUop

	// Predictors.
	storeSets *memdep.StoreSets
	uch       *helios.UCH
	fp        *helios.FP
	oracle    *fusion.Oracle

	// Oracle pairings awaiting application, keyed by tail seq on a ring
	// (exact-seq validated, so an abandoned entry can never alias).
	plannedPairs *pairingRing
	oracleFed    uint64 // next seq the oracle expects

	// Store buffer drain port state.
	drainPortFree uint64
	lastDrainDone uint64

	// Crash-dump breadcrumbs: ring of the last committed seqs.
	recentCommits [8]uint64
	recentCount   uint64

	// Chaos fault injection (cfg.ChaosFlushInterval > 0).
	chaosRand *rand.Rand

	// Observability (cfg.Obs; nil when disabled). flushedAt/flushPending
	// feed the flush-recovery latency histogram: armed by flushFrom,
	// observed at the next commit.
	obs          *obs.Observer
	flushedAt    uint64
	flushPending bool

	// Top-down accounting state (DESIGN.md §12): tdRecovering marks
	// rename-idle cycles after a flush as squash recovery until the
	// next dispatch; renameStalled lets fetch charge StallAQ only on
	// cycles rename did not already charge a stall (once-per-cycle
	// attribution across the stall_* family).
	tdRecovering  bool
	renameStalled bool

	cycle uint64
	st    Stats
}

// New builds a pipeline over the given committed-path source.
func New(cfg Config, src trace.Source) *Pipeline {
	cfg.validate()
	p := &Pipeline{
		cfg:          cfg,
		mem:          cache.New(cfg.Cache),
		src:          src,
		tage:         branch.NewTAGE(cfg.TAGELogSize),
		btb:          branch.NewBTB(cfg.BTBSets, cfg.BTBWays),
		ras:          branch.NewRAS(cfg.RASSize),
		aq:           newUopRing(cfg.AQSize),
		rob:          newUopRing(cfg.ROBSize),
		events:       newEventWheel(),
		storeSets:    memdep.New(cfg.StoreSetLogSize, cfg.StoreSetLogSets),
		plannedPairs: newPairingRing(cfg.PairCfg.MaxDist),
		obs:          cfg.Obs,
	}
	// Physical register file: the first 32 back the initial RAT.
	p.regReady = make([]bool, cfg.PhysRegs)
	p.waiters = make([]waiterList, cfg.PhysRegs)
	for i := 0; i < 32; i++ {
		p.rat[i] = int32(i)
		p.cRAT[i] = int32(i)
		p.lastWriter[i] = -1
		p.regReady[i] = true
	}
	for i := int32(32); i < int32(cfg.PhysRegs); i++ {
		p.freeList = append(p.freeList, i)
	}
	// Top-down slot budget: DispatchWidth slots accounted per cycle.
	p.st.TopDown.SlotsPerCycle = uint64(cfg.DispatchWidth)
	if cfg.Mode.Predictive() {
		if cfg.UCHLoadEntries > 0 {
			p.uch = helios.NewUCHSize(cfg.UCHLoadEntries)
		} else {
			p.uch = helios.NewUCH()
		}
		p.fp = helios.NewFPWith(cfg.FP)
	}
	if cfg.Mode.OraclePairs() {
		p.oracle = fusion.NewOracle(cfg.PairCfg)
	}
	return p
}

// Stats returns the accumulated statistics.
func (p *Pipeline) Stats() *Stats { return &p.st }

// Mem returns the cache hierarchy (for cache stats).
func (p *Pipeline) Mem() *cache.Hierarchy { return p.mem }

// watchdogInterval is the forward-progress bound: if no instruction
// commits for this many cycles, the run is declared hung and fails with
// a FailWatchdog SimError instead of spinning forever.
const watchdogInterval = 100_000

// ctxCheckInterval is how often (in cycles) the run loop polls its
// context — frequent enough that cancellation lands well within one
// watchdog interval, rare enough to stay off the per-cycle hot path.
const ctxCheckInterval = 1024

// Run simulates until the stream is exhausted and the pipeline drains, or
// cfg.MaxUops architectural instructions have committed. It returns the
// final statistics.
//
//helios:ctx-ok top-of-stack convenience for examples and tests; callers needing cancellation use RunContext
func (p *Pipeline) Run() (*Stats, error) {
	return p.run(context.Background(), 0)
}

// RunContext is Run with cooperative cancellation: the cycle loop polls
// ctx and aborts with a FailContext SimError (unwrapping to ctx.Err())
// within ctxCheckInterval cycles of cancellation or deadline expiry.
func (p *Pipeline) RunContext(ctx context.Context) (*Stats, error) {
	return p.run(ctx, 0)
}

// run is the single simulation loop behind Run, RunContext and
// RunChecked. Every abnormal exit — watchdog, stage panic, stream fault,
// corrupt record, invariant violation, cancellation — is returned as a
// *SimError with a pipeline snapshot attached; run never panics and
// never hangs.
func (p *Pipeline) run(ctx context.Context, checkEvery uint64) (st *Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			st, err = &p.st, p.panicFailure(r)
		}
	}()
	if p.cfg.ChaosFlushInterval > 0 && p.chaosRand == nil {
		p.chaosRand = rand.New(rand.NewSource(p.cfg.ChaosSeed))
	}
	lastCommitted := p.st.CommittedInsts
	lastCommit := p.cycle
	for {
		if p.cfg.MaxUops > 0 && p.st.CommittedInsts >= p.cfg.MaxUops {
			break
		}
		if p.streamDone && p.rob.len() == 0 && p.aq.len() == 0 &&
			int(p.nextFetch-p.windowBase) >= len(p.window) && len(p.sq) == 0 {
			break
		}
		if p.cycle%ctxCheckInterval == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return &p.st, p.failure(FailContext,
					fmt.Sprintf("run aborted at cycle %d", p.cycle), cerr)
			}
		}
		p.cycle++
		p.st.Cycles++

		p.commitStage()
		p.drainStores()
		p.writebackStage()
		p.issueStage()
		p.renameDispatchStage()
		p.frontendStage()

		// Chaos hook: force a flush from a random live µ-op. The flush
		// machinery must preserve architectural results regardless.
		if p.chaosRand != nil && p.cycle%p.cfg.ChaosFlushInterval == 0 && p.rob.len() > 0 {
			p.flushFrom(p.rob.at(p.chaosRand.Intn(p.rob.len())).seq)
			p.st.ChaosFlushes++
		}

		if p.obs != nil && p.obs.SampleEvery > 0 && p.cycle%p.obs.SampleEvery == 0 {
			p.obsSample()
		}

		if checkEvery > 0 && p.cycle%checkEvery == 0 {
			if ierr := p.CheckInvariants(); ierr != nil {
				return &p.st, p.failure(FailInvariant,
					fmt.Sprintf("violated at cycle %d", p.cycle), ierr)
			}
		}

		// Watchdog: the model must always make forward progress.
		if p.st.CommittedInsts != lastCommitted {
			lastCommitted = p.st.CommittedInsts
			lastCommit = p.cycle
		} else if p.cycle-lastCommit > watchdogInterval {
			return &p.st, p.failure(FailWatchdog,
				fmt.Sprintf("no commit for %d cycles", watchdogInterval), nil)
		}
	}
	if p.streamErr != nil {
		if se, ok := p.streamErr.(*SimError); ok {
			return &p.st, se
		}
		return &p.st, p.failure(FailStream, "committed stream ended on a fault", p.streamErr)
	}
	// Emit the final partial interval so short runs still produce a row.
	if p.obs != nil && p.obs.SampleEvery > 0 && p.cycle%p.obs.SampleEvery != 0 {
		p.obsSample()
	}
	return &p.st, nil
}

// describeUop renders a µ-op for crash dumps and watchdog messages.
func describeUop(u *pUop) string {
	if u == nil {
		return "<empty>"
	}
	return fmt.Sprintf("seq=%d %v st=%d kind=%v validated=%v pendSrcs=%d",
		u.seq, u.r.Inst, u.st, u.kind, u.validated, u.pendSrcs)
}

// record returns the dynamic record for seq, which must be inside the
// window.
func (p *Pipeline) record(seq uint64) *emu.Retired {
	idx := int(seq - p.windowBase)
	if idx < 0 || idx >= len(p.window) {
		return nil
	}
	return &p.window[idx]
}

// span returns records [from, to] inclusive, or nil if out of window.
func (p *Pipeline) span(from, to uint64) []emu.Retired {
	lo := int(from - p.windowBase)
	hi := int(to - p.windowBase)
	if lo < 0 || hi >= len(p.window) || lo > hi {
		return nil
	}
	return p.window[lo : hi+1]
}

// fetchRecord pulls the record for seq into the window, reading from the
// source as needed. Returns nil when the stream is exhausted first; if it
// ended on an emulation fault, the fault is latched for Run to surface.
// Each record is validated on the way in: a corrupt or reordered stream
// ends the run with a FailCorrupt SimError instead of corrupting the
// window indexing (or panicking deeper in the pipeline).
func (p *Pipeline) fetchRecord(seq uint64) *emu.Retired {
	for uint64(len(p.window))+p.windowBase <= seq && !p.streamDone {
		r, ok := p.src.Next()
		if !ok {
			p.streamDone = true
			p.streamErr = p.src.Err()
			break
		}
		if verr := p.validateRecord(r); verr != nil {
			p.streamDone = true
			p.streamErr = p.failure(FailCorrupt, "source handed a malformed record", verr)
			break
		}
		if len(p.window) == 0 {
			p.windowBase = r.Seq
		}
		p.window = append(p.window, r)
	}
	return p.record(seq)
}

// validateRecord rejects records the pipeline cannot safely simulate:
// out-of-sequence streams (which would corrupt window indexing) and
// field values that would index out of the machine's tables. This is the
// trust boundary for hostile trace files and faulty sources.
func (p *Pipeline) validateRecord(r emu.Retired) error {
	if p.srcStarted && r.Seq != p.srcNextSeq {
		return fmt.Errorf("record out of sequence: seq %d, want %d", r.Seq, p.srcNextSeq)
	}
	if int(r.Inst.Op) >= isa.NumOpcodes {
		return fmt.Errorf("seq %d: opcode %d out of range", r.Seq, r.Inst.Op)
	}
	if int(r.Inst.Rd) >= isa.NumRegs || int(r.Inst.Rs1) >= isa.NumRegs || int(r.Inst.Rs2) >= isa.NumRegs {
		return fmt.Errorf("seq %d: register out of range (rd=%d rs1=%d rs2=%d)",
			r.Seq, r.Inst.Rd, r.Inst.Rs1, r.Inst.Rs2)
	}
	if r.MemSize > 8 {
		return fmt.Errorf("seq %d: impossible access size %d", r.Seq, r.MemSize)
	}
	p.srcStarted = true
	p.srcNextSeq = r.Seq + 1
	return nil
}

// pruneWindow drops records older than the oldest seq that can still be
// needed (everything below the commit point, keeping MaxDist of history
// for oracle re-priming after a flush).
func (p *Pipeline) pruneWindow(committedSeq uint64) {
	keepFrom := committedSeq
	slack := uint64(p.cfg.PairCfg.MaxDist + 2)
	if keepFrom > slack {
		keepFrom -= slack
	} else {
		keepFrom = 0
	}
	if keepFrom <= p.windowBase {
		return
	}
	drop := int(keepFrom - p.windowBase)
	if drop > len(p.window) {
		drop = len(p.window)
	}
	// Copy down occasionally rather than re-slicing forever.
	if drop > 4096 {
		//helios:hotalloc-ok copy-down into the same backing array; length only shrinks
		p.window = append(p.window[:0], p.window[drop:]...)
		p.windowBase = keepFrom
	}
}
