package ooo

import (
	"fmt"

	"helios/internal/branch"
	"helios/internal/cache"
	"helios/internal/emu"
	"helios/internal/fusion"
	"helios/internal/helios"
	"helios/internal/memdep"
	"helios/internal/trace"
)

// Pipeline is the cycle-level core model.
type Pipeline struct {
	cfg Config
	mem *cache.Hierarchy

	// Instruction supply: the committed-path stream in program order,
	// either a live emulator or a recorded trace replay cursor.
	src        trace.Source
	streamDone bool
	streamErr  error         // emulation fault that ended the stream
	window     []emu.Retired // fetched records not yet committed
	windowBase uint64        // seq of window[0]
	nextFetch  uint64        // next seq to decode

	// Frontend.
	ghr           branch.History
	tage          *branch.TAGE
	btb           *branch.BTB
	ras           *branch.RAS
	fetchStalled  bool   // waiting on a mispredicted branch to resolve
	fetchResumeAt uint64 // cycle at which fetch may resume
	fetchHeldBy   uint64 // seq of the branch fetch is stalled on
	aq            *uopRing

	// I-cache fetch stall.
	icacheReadyAt uint64
	lastFetchLine uint64

	// Rename.
	rat      [32]int32
	freeList []int32
	regReady []bool
	waiters  []waiterList

	// Committed architectural state for flush recovery: mapping plus the
	// sequence number of the youngest committed writer per arch register.
	cRAT       [32]int32
	lastWriter [32]int64

	// Pending NCSF'd µ-ops: head renamed, tail not yet (paper: ≤ 2).
	pendingNCSF []*pUop

	// Backend.
	rob       *uopRing
	iq        []*pUop
	iqScratch []*pUop
	lq        []*pUop
	sq        []*pUop
	events    map[uint64][]*pUop

	// Predictors.
	storeSets *memdep.StoreSets
	uch       *helios.UCH
	fp        *helios.FP
	oracle    *fusion.Oracle

	// Oracle pairings awaiting application, tail seq → pairing.
	plannedPairs map[uint64]fusion.Pairing
	oracleFed    uint64 // next seq the oracle expects

	// Store buffer drain port state.
	drainPortFree uint64
	lastDrainDone uint64

	cycle uint64
	st    Stats
}

// New builds a pipeline over the given committed-path source.
func New(cfg Config, src trace.Source) *Pipeline {
	cfg.validate()
	p := &Pipeline{
		cfg:          cfg,
		mem:          cache.New(cfg.Cache),
		src:          src,
		tage:         branch.NewTAGE(11),
		btb:          branch.NewBTB(1024, 4),
		ras:          branch.NewRAS(64),
		aq:           newUopRing(cfg.AQSize),
		rob:          newUopRing(cfg.ROBSize),
		events:       make(map[uint64][]*pUop),
		storeSets:    memdep.New(12, 7),
		plannedPairs: make(map[uint64]fusion.Pairing),
	}
	// Physical register file: the first 32 back the initial RAT.
	p.regReady = make([]bool, cfg.PhysRegs)
	p.waiters = make([]waiterList, cfg.PhysRegs)
	for i := 0; i < 32; i++ {
		p.rat[i] = int32(i)
		p.cRAT[i] = int32(i)
		p.lastWriter[i] = -1
		p.regReady[i] = true
	}
	for i := int32(32); i < int32(cfg.PhysRegs); i++ {
		p.freeList = append(p.freeList, i)
	}
	if cfg.Mode.Predictive() {
		if cfg.UCHLoadEntries > 0 {
			p.uch = helios.NewUCHSize(cfg.UCHLoadEntries)
		} else {
			p.uch = helios.NewUCH()
		}
		p.fp = helios.NewFPWith(cfg.FP)
	}
	if cfg.Mode.OraclePairs() {
		p.oracle = fusion.NewOracle(cfg.PairCfg)
	}
	return p
}

// Stats returns the accumulated statistics.
func (p *Pipeline) Stats() *Stats { return &p.st }

// Mem returns the cache hierarchy (for cache stats).
func (p *Pipeline) Mem() *cache.Hierarchy { return p.mem }

// Run simulates until the stream is exhausted and the pipeline drains, or
// cfg.MaxUops architectural instructions have committed. It returns the
// final statistics.
func (p *Pipeline) Run() (*Stats, error) {
	lastCommit := uint64(0)
	lastCommitted := uint64(0)
	for {
		if p.cfg.MaxUops > 0 && p.st.CommittedInsts >= p.cfg.MaxUops {
			break
		}
		if p.streamDone && p.rob.len() == 0 && p.aq.len() == 0 &&
			int(p.nextFetch-p.windowBase) >= len(p.window) && len(p.sq) == 0 {
			break
		}
		p.cycle++
		p.st.Cycles++

		p.commitStage()
		p.drainStores()
		p.writebackStage()
		p.issueStage()
		p.renameDispatchStage()
		p.frontendStage()

		// Watchdog: the model must always make forward progress.
		if p.st.CommittedInsts != lastCommitted {
			lastCommitted = p.st.CommittedInsts
			lastCommit = p.cycle
		} else if p.cycle-lastCommit > 100000 {
			return &p.st, fmt.Errorf("ooo: no commit for 100000 cycles at cycle %d (rob=%d aq=%d iq=%d lq=%d sq=%d head=%v)",
				p.cycle, p.rob.len(), p.aq.len(), len(p.iq), len(p.lq), len(p.sq), p.describeROBHead())
		}
	}
	if p.streamErr != nil {
		return &p.st, fmt.Errorf("ooo: %w", p.streamErr)
	}
	return &p.st, nil
}

func (p *Pipeline) describeROBHead() string {
	u := p.rob.front()
	if u == nil {
		return "<empty>"
	}
	return fmt.Sprintf("seq=%d %v st=%d kind=%v validated=%v pendSrcs=%d",
		u.seq, u.r.Inst, u.st, u.kind, u.validated, u.pendSrcs)
}

// record returns the dynamic record for seq, which must be inside the
// window.
func (p *Pipeline) record(seq uint64) *emu.Retired {
	idx := int(seq - p.windowBase)
	if idx < 0 || idx >= len(p.window) {
		return nil
	}
	return &p.window[idx]
}

// span returns records [from, to] inclusive, or nil if out of window.
func (p *Pipeline) span(from, to uint64) []emu.Retired {
	lo := int(from - p.windowBase)
	hi := int(to - p.windowBase)
	if lo < 0 || hi >= len(p.window) || lo > hi {
		return nil
	}
	return p.window[lo : hi+1]
}

// fetchRecord pulls the record for seq into the window, reading from the
// source as needed. Returns nil when the stream is exhausted first; if it
// ended on an emulation fault, the fault is latched for Run to surface.
func (p *Pipeline) fetchRecord(seq uint64) *emu.Retired {
	for uint64(len(p.window))+p.windowBase <= seq && !p.streamDone {
		r, ok := p.src.Next()
		if !ok {
			p.streamDone = true
			p.streamErr = p.src.Err()
			break
		}
		if len(p.window) == 0 {
			p.windowBase = r.Seq
		}
		p.window = append(p.window, r)
	}
	return p.record(seq)
}

// pruneWindow drops records older than the oldest seq that can still be
// needed (everything below the commit point, keeping MaxDist of history
// for oracle re-priming after a flush).
func (p *Pipeline) pruneWindow(committedSeq uint64) {
	keepFrom := committedSeq
	slack := uint64(p.cfg.PairCfg.MaxDist + 2)
	if keepFrom > slack {
		keepFrom -= slack
	} else {
		keepFrom = 0
	}
	if keepFrom <= p.windowBase {
		return
	}
	drop := int(keepFrom - p.windowBase)
	if drop > len(p.window) {
		drop = len(p.window)
	}
	// Copy down occasionally rather than re-slicing forever.
	if drop > 4096 {
		p.window = append(p.window[:0], p.window[drop:]...)
		p.windowBase = keepFrom
	}
}
