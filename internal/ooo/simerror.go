package ooo

import (
	"encoding/json"
	"fmt"
	"runtime/debug"
)

// FailKind classifies how a simulation run died. Every abnormal exit of
// the pipeline — a hung machine, a recovered stage panic, a faulting or
// corrupt committed-path stream, a cancelled context — is reported as a
// *SimError carrying one of these kinds plus a pipeline Snapshot, so
// callers get a machine-readable crash dump instead of a bare string.
type FailKind string

const (
	// FailWatchdog: no instruction committed for watchdogInterval cycles.
	FailWatchdog FailKind = "watchdog"
	// FailPanic: a pipeline stage panicked; the panic was recovered.
	FailPanic FailKind = "panic"
	// FailStream: the committed-path source ended on a fault (emulation
	// error, injected fault, ...).
	FailStream FailKind = "stream"
	// FailCorrupt: the source handed the pipeline a malformed record
	// (out-of-sequence, impossible opcode/register/access size).
	FailCorrupt FailKind = "corrupt-stream"
	// FailInvariant: a periodic CheckInvariants sweep found the pipeline
	// in an inconsistent state.
	FailInvariant FailKind = "invariant"
	// FailContext: the run's context was cancelled or its deadline
	// passed.
	FailContext FailKind = "context"
)

// QueueSnap is the occupancy of one pipeline structure at failure time.
type QueueSnap struct {
	Len int `json:"len"`
	Cap int `json:"cap"`
}

// Snapshot is the pipeline state at the moment of failure, designed to be
// attached to bug reports: where the machine was, what the head of each
// structure looked like, what committed last, and whether the internal
// invariants still held.
type Snapshot struct {
	Cycle          uint64 `json:"cycle"`
	CommittedInsts uint64 `json:"committed_insts"`
	CommittedUops  uint64 `json:"committed_uops"`
	Mode           string `json:"mode"`

	ROB QueueSnap `json:"rob"`
	AQ  QueueSnap `json:"aq"`
	IQ  QueueSnap `json:"iq"`
	LQ  QueueSnap `json:"lq"`
	SQ  QueueSnap `json:"sq"`

	ROBHead string `json:"rob_head"`
	AQHead  string `json:"aq_head"`

	NextFetch    uint64 `json:"next_fetch"`
	StreamDone   bool   `json:"stream_done"`
	FetchStalled bool   `json:"fetch_stalled"`

	// RecentCommits holds the sequence numbers of the last instructions
	// to leave the ROB, oldest first.
	RecentCommits []uint64 `json:"recent_commits"`

	// Invariants is "ok" or the first violated invariant, from running
	// CheckInvariants at the point of failure.
	Invariants string `json:"invariants"`
}

// SimError is a structured simulation failure: a kind, a human-readable
// message, the underlying cause (if any) and a full pipeline snapshot.
// It serializes to JSON via JSON() for bug reports and crash dumps.
type SimError struct {
	Kind       FailKind `json:"kind"`
	Msg        string   `json:"msg"`
	Cause      string   `json:"cause,omitempty"`
	PanicValue string   `json:"panic_value,omitempty"`
	Stack      string   `json:"stack,omitempty"`
	Snapshot   Snapshot `json:"snapshot"`

	cause error
}

// Error implements error. The snapshot is summarized, not dumped; use
// JSON for the full state.
func (e *SimError) Error() string {
	s := fmt.Sprintf("ooo: %s: %s", e.Kind, e.Msg)
	if e.cause != nil {
		s += ": " + e.cause.Error()
	}
	return fmt.Sprintf("%s (cycle %d, committed %d, rob %d/%d, head %s)",
		s, e.Snapshot.Cycle, e.Snapshot.CommittedInsts,
		e.Snapshot.ROB.Len, e.Snapshot.ROB.Cap, e.Snapshot.ROBHead)
}

// Unwrap exposes the underlying cause, so errors.Is sees through a
// SimError to e.g. context.Canceled or an injected fault sentinel.
func (e *SimError) Unwrap() error { return e.cause }

// JSON renders the full crash dump, indented for direct inclusion in a
// bug report.
func (e *SimError) JSON() []byte {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil { // all fields are plain data; cannot happen
		return []byte(fmt.Sprintf("{%q: %q}", "marshal_error", err.Error()))
	}
	return b
}

// failure builds a SimError of the given kind around the current pipeline
// state.
func (p *Pipeline) failure(kind FailKind, msg string, cause error) *SimError {
	e := &SimError{
		Kind:     kind,
		Msg:      msg,
		Snapshot: p.snapshot(),
		cause:    cause,
	}
	if cause != nil {
		e.Cause = cause.Error()
	}
	return e
}

// panicFailure converts a recovered stage panic into a SimError with the
// panic value and stack attached.
func (p *Pipeline) panicFailure(r any) *SimError {
	e := p.failure(FailPanic, "recovered pipeline stage panic", nil)
	e.PanicValue = fmt.Sprint(r)
	e.Stack = string(debug.Stack())
	return e
}

// snapshot captures the pipeline state for a crash dump. It must be safe
// to call on an arbitrarily corrupted pipeline (it runs inside panic
// recovery), so the invariant sweep is itself recovered.
func (p *Pipeline) snapshot() Snapshot {
	s := Snapshot{
		Cycle:          p.cycle,
		CommittedInsts: p.st.CommittedInsts,
		CommittedUops:  p.st.CommittedUops,
		Mode:           p.cfg.Mode.String(),
		ROB:            QueueSnap{p.rob.len(), p.cfg.ROBSize},
		AQ:             QueueSnap{p.aq.len(), p.cfg.AQSize},
		IQ:             QueueSnap{len(p.iq), p.cfg.IQSize},
		LQ:             QueueSnap{len(p.lq), p.cfg.LQSize},
		SQ:             QueueSnap{len(p.sq), p.cfg.SQSize},
		ROBHead:        describeUop(p.rob.front()),
		AQHead:         describeUop(p.aq.front()),
		NextFetch:      p.nextFetch,
		StreamDone:     p.streamDone,
		FetchStalled:   p.fetchStalled,
		Invariants:     p.invariantVerdict(),
	}
	n := uint64(len(p.recentCommits))
	if p.recentCount < n {
		n = p.recentCount
	}
	for i := p.recentCount - n; i < p.recentCount; i++ {
		s.RecentCommits = append(s.RecentCommits,
			p.recentCommits[i%uint64(len(p.recentCommits))])
	}
	return s
}

// invariantVerdict runs CheckInvariants defensively: a pipeline broken
// enough to panic the checker still yields a verdict string.
func (p *Pipeline) invariantVerdict() (v string) {
	defer func() {
		if r := recover(); r != nil {
			v = fmt.Sprintf("invariant check panicked: %v", r)
		}
	}()
	if err := p.CheckInvariants(); err != nil {
		return err.Error()
	}
	return "ok"
}
