package ooo

import (
	"testing"

	"helios/internal/fusion"
	"helios/internal/helios"
)

// The kernels below are crafted to steer execution into specific Helios
// repair cases (Section IV-C) and validation rules (Section IV-B), then
// assert both the mechanism fired and that architecture was preserved.

// runBoth simulates under NoFusion and the given config and checks the
// committed instruction counts agree.
func runBoth(t *testing.T, src string, cfg Config, maxInsts uint64) (*Stats, *Stats) {
	t.Helper()
	base := New(DefaultConfig(fusion.ModeNoFusion), streamFor(t, src, maxInsts))
	bst, err := base.RunChecked(32)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	p := New(cfg, streamFor(t, src, maxInsts))
	st, err := p.RunChecked(32)
	if err != nil {
		t.Fatalf("config run: %v", err)
	}
	if st.CommittedInsts != bst.CommittedInsts {
		t.Fatalf("committed %d vs baseline %d: fusion changed architecture",
			st.CommittedInsts, bst.CommittedInsts)
	}
	return st, bst
}

// Case: deadlock unfuse. The second load's base depends (through the
// catalyst) on the first load's result: the UCH discovers the same-line
// pair, the FP predicts it, and Rename must unfuse it every time.
func TestRepairDeadlockUnfuse(t *testing.T) {
	src := `
	.data
	.align 6
cell:
	.dword 0
	.text
_start:
	la s0, cell
	sd s0, 0(s0)     # the cell points at itself
	li s1, 4000
loop:
	ld t0, 0(s0)     # produces the next base
	andi t1, t0, 56
	add t2, t0, t1
	andi t3, t2, 7
	ld t4, 0(t0)     # base depends on the first load: deadlock if fused
	add s2, s2, t4
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	st, _ := runBoth(t, src, DefaultConfig(fusion.ModeHelios), 100_000)
	if st.UnfuseReasons[4] == 0 {
		t.Errorf("no deadlock unfuses recorded: %+v reasons=%v", st.UnfusedAtRename, st.UnfuseReasons)
	}
	if st.NCSFLoadPairs > 0 {
		t.Errorf("deadlocking pairs were committed fused: %d", st.NCSFLoadPairs)
	}
}

// Case: serializing instruction in the catalyst blocks fusion.
func TestRepairSerializingUnfuse(t *testing.T) {
	src := `
	.data
	.align 6
buf:
	.zero 64
	.text
_start:
	la s0, buf
	li s1, 4000
loop:
	ld t0, 0(s0)
	add t1, t0, s1
	fence
	ld t2, 16(s0)    # same line, but a fence sits in the catalyst
	add s2, s2, t2
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	st, _ := runBoth(t, src, DefaultConfig(fusion.ModeHelios), 100_000)
	if st.UnfuseReasons[1] == 0 {
		t.Errorf("no serializing unfuses recorded: reasons=%v", st.UnfuseReasons)
	}
	if st.NCSFLoadPairs > 0 {
		t.Errorf("pairs fused across a fence: %d", st.NCSFLoadPairs)
	}
}

// Case: store in the catalyst of a store pair blocks fusion. The extra
// store appears on every fourth iteration only, so the predictor trains
// on the clean iterations and must unfuse when the catalyst store shows up.
func TestRepairStoreInCatalystUnfuse(t *testing.T) {
	src := `
	.data
	.align 6
buf:
	.zero 4096
other:
	.zero 64
	.text
_start:
	la s6, buf
	la s3, other
	li s1, 4000
	li s4, 0         # rotating line offset: cross-iteration pairs are
	li s7, 4032      # cross-line, so only the intra-iteration pair trains
loop:
	add s0, s6, s4
	sd s1, 0(s0)
	andi t0, s1, 3
	bnez t0, clean
	sd s1, 0(s3)     # dirty path: a store inside the catalyst
	j join
clean:
	add t1, s1, s1   # clean path: same catalyst length, no store
	j join
join:
	sd t1, 16(s0)    # pairs with the first store at a fixed distance
	addi s4, s4, 64
	and s4, s4, s7
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	st, _ := runBoth(t, src, DefaultConfig(fusion.ModeHelios), 100_000)
	if st.UnfuseReasons[2] == 0 {
		t.Errorf("no store-in-catalyst unfuses recorded: reasons=%v", st.UnfuseReasons)
	}
	if st.NCSFStorePairs == 0 {
		t.Error("clean iterations should still fuse store pairs")
	}
}

// Case 5: region overflow at execute. Train the predictor on a distance
// whose addresses usually share a line but periodically span more than a
// line-sized region: each overflow must flush, reset confidence, and
// count as a fusion misprediction.
func TestRepairRegionOverflowMispredict(t *testing.T) {
	src := `
	.data
	.align 6
arr:
	.zero 16384
	.text
_start:
	la s0, arr
	li s1, 2500
	li s4, 0         # offset
loop:
	add t0, s0, s4
	ld t1, 0(t0)
	add t2, t1, s1
	ld t3, 40(t0)    # same line for offsets 0..24(mod 64), overflow otherwise
	add s2, s2, t3
	addi s4, s4, 16
	andi s4, s4, 2047
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	st, _ := runBoth(t, src, DefaultConfig(fusion.ModeHelios), 100_000)
	if st.FusionMispredicts == 0 {
		t.Errorf("no fusion mispredictions despite periodic region overflows: %+v", st)
	}
	if st.Accuracy() > 0.999 {
		t.Errorf("accuracy %.4f should reflect the mispredicts", st.Accuracy())
	}
	if st.Flushes == 0 {
		t.Error("region overflows must flush the pipeline")
	}
}

// DBR load pairs: two pointers into the same line with different
// architectural base registers can only fuse through the predictor.
func TestDBRLoadPairsFuse(t *testing.T) {
	src := `
	.data
	.align 6
buf:
	.zero 64
	.text
_start:
	la s0, buf
	addi s3, s0, 32  # second base register into the same line
	li s1, 4000
loop:
	ld t0, 0(s0)
	add t1, t0, s1
	ld t2, 0(s3)     # different base register, same cache line
	add s2, s2, t2
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	st, _ := runBoth(t, src, DefaultConfig(fusion.ModeHelios), 100_000)
	if st.NCSFLoadPairs == 0 {
		t.Fatalf("no DBR pairs fused: %+v", st)
	}
	if st.DBRPairs == 0 {
		t.Error("fused pairs not classified as DBR")
	}
}

// Asymmetric pairs: differently sized accesses in one line.
func TestAsymmetricPairsFuse(t *testing.T) {
	src := `
	.data
	.align 6
buf:
	.zero 64
	.text
_start:
	la s0, buf
	li s1, 4000
loop:
	ld t0, 0(s0)     # 8 bytes
	add t1, t0, s1
	lw t2, 16(s0)    # 4 bytes, same line
	add s2, s2, t2
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	st, _ := runBoth(t, src, DefaultConfig(fusion.ModeHelios), 100_000)
	if st.NCSFLoadPairs == 0 {
		t.Fatalf("no pairs fused: %+v", st)
	}
	if st.AsymmetricPairs == 0 {
		t.Error("pairs not classified asymmetric")
	}
}

// The nesting limit: with MaxNCSFNest=1, interleaved pair opportunities
// must be partially dropped (NestLimitDrops > 0) without breaking anything.
func TestNestingLimitDrops(t *testing.T) {
	src := `
	.data
	.align 7
buf:
	.zero 128
	.text
_start:
	la s0, buf
	addi s3, s0, 64
	li s1, 4000
loop:
	ld t0, 0(s0)     # head A
	ld t1, 0(s3)     # head B (interleaved pair)
	add t2, t0, t1
	ld t3, 16(s0)    # tail A
	ld t4, 16(s3)    # tail B
	add s2, t3, t4
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	cfg := DefaultConfig(fusion.ModeHelios)
	cfg.MaxNCSFNest = 1
	st1, _ := runBoth(t, src, cfg, 100_000)
	cfg2 := DefaultConfig(fusion.ModeHelios)
	cfg2.MaxNCSFNest = 2
	st2, _ := runBoth(t, src, cfg2, 100_000)
	if st1.NestLimitDrops == 0 {
		t.Errorf("nest=1 should drop interleaved pairs: %+v", st1.NestLimitDrops)
	}
	if st2.NCSFPairs() <= st1.NCSFPairs() {
		t.Errorf("nest=2 (%d pairs) should fuse more than nest=1 (%d)",
			st2.NCSFPairs(), st1.NCSFPairs())
	}
}

// Probabilistic confidence counters (Riley & Zilles) emulate wider
// counters: entries both earn and lose trust more slowly. On a workload
// whose pair distance is stable, the predictor still reaches full
// coverage (the precise hysteresis contract is unit-tested in
// internal/helios).
func TestProbabilisticCountersStillConverge(t *testing.T) {
	src := `
	.data
	.align 6
buf:
	.zero 64
	.text
_start:
	la s0, buf
	li s1, 4000
loop:
	ld t0, 0(s0)
	add t1, t0, s1
	ld t2, 16(s0)
	add s2, s2, t2
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	prob := DefaultConfig(fusion.ModeHelios)
	prob.FP = helios.FPConfig{ProbShift: 3}
	st, _ := runBoth(t, src, prob, 100_000)
	if st.NCSFLoadPairs == 0 {
		t.Fatalf("probabilistic FP never converged: %+v", st)
	}
}

// Small UCH finds fewer distant pairs.
func TestUCHSizeAblation(t *testing.T) {
	src := `
	.data
	.align 6
a0buf:
	.zero 64
b0buf:
	.zero 64
c0buf:
	.zero 64
	.text
_start:
	la s0, a0buf
	la s3, b0buf
	la s5, c0buf
	li s1, 4000
loop:
	ld t0, 0(s0)
	ld t1, 0(s3)
	ld t2, 0(s5)
	add t3, t0, t1
	ld t4, 16(s0)    # pairs with the first load, 3 loads back
	ld t5, 16(s3)
	ld t6, 16(s5)
	add s2, t4, t5
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	small := DefaultConfig(fusion.ModeHelios)
	small.UCHLoadEntries = 1
	stSmall, _ := runBoth(t, src, small, 120_000)
	full := DefaultConfig(fusion.ModeHelios)
	stFull, _ := runBoth(t, src, full, 120_000)
	if stFull.NCSFPairs() <= stSmall.NCSFPairs() {
		t.Errorf("6-entry UCH (%d pairs) should discover more than 1-entry (%d)",
			stFull.NCSFPairs(), stSmall.NCSFPairs())
	}
}

// Line-crossing pairs: contiguous accesses straddling a line boundary
// still fuse (two serialized accesses, Section II-B).
func TestLineCrossingPairs(t *testing.T) {
	src := `
	.data
	.align 6
buf:
	.zero 256
	.text
_start:
	la s0, buf
	addi s0, s0, 60  # the pair [60,76) straddles the line boundary
	li s1, 4000
loop:
	ld t0, 0(s0)
	ld t1, 8(s0)
	add s2, t0, t1
	addi s1, s1, -1
	bnez s1, loop
	li a7, 93
	li a0, 0
	ecall
	`
	st, _ := runBoth(t, src, DefaultConfig(fusion.ModeCSFSBR), 60_000)
	if st.CSFLoadPairs == 0 {
		t.Fatal("crossing pair did not fuse")
	}
	if st.LineCrossingPairs == 0 {
		t.Error("crossing accesses not counted")
	}
}
