package ooo

import (
	"helios/internal/emu"
	"helios/internal/helios"
	"helios/internal/uop"
)

// stage tracks the lifecycle of a µ-op in the pipeline.
type stage uint8

const (
	stDecoded    stage = iota // in the allocation queue
	stDispatched              // in ROB (and IQ/LQ/SQ)
	stIssued                  // executing
	stCompleted               // result produced, awaiting commit
	stCommitted
	stKilled // flushed
)

// invalidReg marks an unused physical register slot.
const invalidReg = int32(-1)

// pUop is a µ-op flowing through the pipeline. A fused µ-op keeps the
// head nucleus's record in r and its tail nucleus's record in tailR
// (pointing at its own tailStorage). µ-ops are recycled through the
// uopArena; gen/pooled are the recycling bookkeeping and survive reset.
type pUop struct {
	r   emu.Retired
	seq uint64 // == r.Seq; unique per dynamic instruction
	ghr uint64 // global branch history at decode (before own outcome)
	st  stage

	// Arena bookkeeping: gen increments on every recycle so stale waiter
	// and event-wheel references can detect reincarnation; pooled guards
	// against double release.
	gen    uint32
	pooled bool

	// Fusion state.
	kind        uop.FuseKind
	tailR       *emu.Retired // architectural record of the fused tail
	tailStorage emu.Retired  // backing store for tailR (avoids a heap copy)
	isNCSF      bool         // fused non-consecutively: needs validation
	validated   bool         // NCSF'd µ-op may issue (NCS Ready)
	unfused     bool         // NCSF fusion was undone at rename
	pred        helios.Prediction
	usedPred    bool   // fusion came from the FP (Helios) and must update it
	predGhr     uint64 // tail's decode-time GHR, for FP updates

	// Pair attributes recorded at fuse time (for stats and the region
	// check at execute).
	pairCat       uop.AddrCategory
	pairDistance  int
	pairSameBase  bool
	pairSymmetric bool

	// Tail-nucleus role (the tail object still flows to Rename for NCSF).
	// headGen snapshots the head's generation at link time: a head that
	// was released and recycled while the tail still pointed at it fails
	// the check and the pairing is treated as cancelled.
	isTailNucleus bool
	headUop       *pUop // for a tail nucleus: its head
	headGen       uint32

	// Renamed registers. Fused µ-ops use up to 3 sources and 2 dests.
	srcPhys  [3]int32
	dstPhys  [2]int32
	oldPhys  [2]int32 // previous mapping of each dest arch reg (for flush/free)
	dstArch  [2]uint8
	numSrc   int8
	ownSrcs  int8 // sources belonging to the head itself (low slots)
	numDst   int8
	pendSrcs int8 // sources not yet ready

	// Branch prediction outcome.
	mispredicted bool

	// Memory state.
	inLQ, inSQ   bool
	addrKnown    bool   // execute reached: EA(s) valid
	memLo        uint64 // combined range start
	memSpan      uint64
	forwarded    bool   // load served by store-to-load forwarding
	slowForward  bool   // load replayed to merge a partial store overlap
	committedSt  bool   // store: commit reached, in the store buffer
	draining     bool   // store: drain to cache started
	drained      bool   // store: drain complete, SQ entry reclaimed
	drainDoneAt  uint64 // store: cycle the drain completes
	waitStoreSeq uint64 // load: store-set predicted dependence
	waitStore    bool

	// Timing.
	decodedAt  uint64
	renamedAt  uint64
	issuedAt   uint64
	completeAt uint64

	// Top-down accounting (DESIGN.md §12): the bucket this µ-op's
	// dispatch slot was attributed to (-1 = no slot claimed), and the
	// hierarchy level that served its memory access (memL1D..memDRAM,
	// recorded at load issue / store drain start).
	tdBucket int8
	memLevel int8
}

// srcPending marks a source slot reserved for the tail nucleus, resolved
// only when the tail passes Rename (RaW-safe, Section IV-B2).
const srcPending = int32(-2)

// isMem reports whether the µ-op accesses memory (including fused idioms
// whose tail is a load).
func (u *pUop) isMem() bool { return u.isLoad() || u.isStore() }

func (u *pUop) isLoad() bool {
	if u.kind == uop.FuseIdiom && u.tailR != nil {
		return u.tailR.IsLoad()
	}
	return u.r.IsLoad()
}

func (u *pUop) isStore() bool { return u.r.IsStore() }

// memRecords returns the effective accesses of the µ-op: one for a simple
// memory op, two for a fused pair.
func (u *pUop) memRecords() (ea1 uint64, sz1 uint8, ea2 uint64, sz2 uint8, pair bool) {
	if u.kind == uop.FuseIdiom && u.tailR != nil {
		return u.tailR.EA, u.tailR.MemSize, 0, 0, false
	}
	if u.kind.IsMemory() && u.tailR != nil && !u.unfused {
		return u.r.EA, u.r.MemSize, u.tailR.EA, u.tailR.MemSize, true
	}
	return u.r.EA, u.r.MemSize, 0, 0, false
}

// archInstCount returns how many architectural instructions the µ-op
// retires (2 when fused).
func (u *pUop) archInstCount() uint64 {
	if u.kind != uop.FuseNone && u.tailR != nil && !u.unfused {
		return 2
	}
	return 1
}

// uopRing is a FIFO of µ-ops backed by a slice (used for the AQ and ROB).
type uopRing struct {
	buf  []*pUop
	head int
	size int
}

func newUopRing(capacity int) *uopRing {
	return &uopRing{buf: make([]*pUop, capacity)}
}

func (q *uopRing) len() int   { return q.size }
func (q *uopRing) cap() int   { return len(q.buf) }
func (q *uopRing) full() bool { return q.size == len(q.buf) }

func (q *uopRing) push(u *pUop) bool {
	if q.full() {
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = u
	q.size++
	return true
}

func (q *uopRing) front() *pUop {
	if q.size == 0 {
		return nil
	}
	return q.buf[q.head]
}

func (q *uopRing) pop() *pUop {
	if q.size == 0 {
		return nil
	}
	u := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return u
}

// at returns the i-th element from the front (0 = front).
func (q *uopRing) at(i int) *pUop {
	return q.buf[(q.head+i)%len(q.buf)]
}

// popBack removes the youngest element (used when flushing).
func (q *uopRing) popBack() *pUop {
	if q.size == 0 {
		return nil
	}
	idx := (q.head + q.size - 1) % len(q.buf)
	u := q.buf[idx]
	q.buf[idx] = nil
	q.size--
	return u
}

func (q *uopRing) back() *pUop {
	if q.size == 0 {
		return nil
	}
	return q.buf[(q.head+q.size-1)%len(q.buf)]
}
