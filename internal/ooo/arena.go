package ooo

import (
	"helios/internal/fusion"
)

// This file holds the hot-path memory-layout structures (DESIGN.md §13):
// a free-list arena recycling pUop objects across the run, an event wheel
// replacing the per-cycle completion map, and a pairing ring replacing the
// oracle's tail-seq map. All three trade the general map/allocate idiom
// for slice indexing keyed by cycle or sequence number, which the
// simulator can afford because both keys are dense and bounded.

// uopArena recycles pUop objects. µ-ops are allocated in fixed-size
// chunks (pointer stability: a pUop never moves once handed out) and
// returned through a free list when they leave the pipeline. Each recycle
// bumps the µ-op's generation counter, which lets the structures that may
// hold stale references — register waiter lists and the event wheel —
// detect that "their" µ-op has been reincarnated and ignore it.
type uopArena struct {
	chunks [][]pUop
	used   int // occupancy of the last chunk
	free   []*pUop
}

const arenaChunk = 256

// alloc returns a reset µ-op: zero fields except the generation counter,
// with the physical-register slots marked invalid.
func (a *uopArena) alloc() *pUop {
	var u *pUop
	if n := len(a.free); n > 0 {
		u = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		u.pooled = false
	} else {
		if len(a.chunks) == 0 || a.used == arenaChunk {
			a.chunks = append(a.chunks, make([]pUop, arenaChunk))
			a.used = 0
		}
		u = &a.chunks[len(a.chunks)-1][a.used]
		a.used++
	}
	u.srcPhys = [3]int32{invalidReg, invalidReg, invalidReg}
	u.dstPhys = [2]int32{invalidReg, invalidReg}
	u.oldPhys = [2]int32{invalidReg, invalidReg}
	return u
}

// release returns a µ-op to the free list. The caller must guarantee no
// live structure still dereferences it without a generation check; the
// reset wipes every field (pinned by TestUopResetComplete) so nothing can
// leak into the next incarnation. Double release is a bookkeeping bug
// severe enough to stop the run: the panic is converted to a SimError by
// the run loop's recover.
func (a *uopArena) release(u *pUop) {
	if u.pooled {
		panic("ooo: µ-op released twice")
	}
	u.reset()
	//helios:hotalloc-ok free list refills capacity vacated by alloc; it grows only while the arena itself grows (warmup), then never again
	a.free = append(a.free, u)
}

// reset wipes the µ-op for reuse, keeping only the generation counter
// (bumped, so stale waiter/event references fail their gen check) and the
// pooled flag.
func (u *pUop) reset() {
	*u = pUop{gen: u.gen + 1, pooled: true}
}

// eventRef is one pending completion in the event wheel. The generation
// snapshot guards against the µ-op being flushed, released and recycled
// while its completion was still in flight.
type eventRef struct {
	u   *pUop
	gen uint32
}

// eventWheel schedules µ-op completions by absolute cycle. Slots are
// indexed cycle&mask; grow-on-insert keeps the horizon (completeAt −
// current cycle) strictly below the slot count, so a slot never holds
// events for two different future cycles. Growth is rare: the horizon is
// bounded by the worst memory latency, but chaos configs randomize cache
// latencies, so the bound is discovered at run time rather than sized
// from the config.
type eventWheel struct {
	slots [][]eventRef
	mask  uint64
}

func newEventWheel() *eventWheel {
	const initSlots = 1024 // > default worst-case DRAM latency
	return &eventWheel{slots: make([][]eventRef, initSlots), mask: initSlots - 1}
}

// schedule inserts a completion at absolute cycle `at`, where now is the
// current cycle (needed to maintain the horizon invariant).
func (w *eventWheel) schedule(u *pUop, at, now uint64) {
	if at-now >= uint64(len(w.slots)) {
		w.grow(at-now, now)
	}
	i := at & w.mask
	//helios:hotalloc-ok slot slices are drained to [:0] and reused; capacity reaches the per-cycle event peak once, then stays
	w.slots[i] = append(w.slots[i], eventRef{u: u, gen: u.gen})
}

// grow rebuilds the wheel with at least horizon+1 slots (next power of
// two), re-slotting pending events under the new mask.
//
//helios:hotalloc-ok geometric growth to the longest latency ever seen, then never again; amortized O(1) per schedule
func (w *eventWheel) grow(horizon, now uint64) {
	n := uint64(len(w.slots))
	for n <= horizon {
		n *= 2
	}
	old := w.slots
	w.slots = make([][]eventRef, n)
	w.mask = n - 1
	for _, evs := range old {
		for _, e := range evs {
			// Pending events all lie within the old horizon, hence within
			// the new one; their absolute cycle is recoverable from the
			// µ-op itself.
			i := e.u.completeAt & w.mask
			w.slots[i] = append(w.slots[i], e)
		}
	}
}

// drain returns the events due at cycle `now` and empties the slot. The
// returned slice is only valid until the next schedule call for that
// slot; callers must filter each entry through its generation check.
func (w *eventWheel) drain(now uint64) []eventRef {
	i := now & w.mask
	evs := w.slots[i]
	w.slots[i] = evs[:0]
	return evs
}

// pairingRing holds oracle pairings awaiting application, keyed by the
// tail's sequence number. Pairings are produced when the oracle observes
// the tail record and consumed (or abandoned) in the same decode
// neighbourhood, so live entries span at most a MaxDist-sized window;
// the ring is sized well above that and each slot stores the exact tail
// seq so a stale abandoned entry can never satisfy a lookup for a later
// seq that happens to share its slot.
type pairingRing struct {
	slots []pairingSlot
	mask  uint64
}

type pairingSlot struct {
	p     fusion.Pairing
	seq   uint64
	valid bool
}

func newPairingRing(maxDist int) *pairingRing {
	n := uint64(256)
	for n < 4*uint64(maxDist+2) {
		n *= 2
	}
	return &pairingRing{slots: make([]pairingSlot, n), mask: n - 1}
}

// put records a pairing for tail seq p.TailSeq, overwriting whatever
// older (necessarily dead or abandoned) entry shared the slot.
func (r *pairingRing) put(p fusion.Pairing) {
	r.slots[p.TailSeq&r.mask] = pairingSlot{p: p, seq: p.TailSeq, valid: true}
}

// take returns and clears the pairing for exactly this tail seq.
func (r *pairingRing) take(seq uint64) (fusion.Pairing, bool) {
	s := &r.slots[seq&r.mask]
	if !s.valid || s.seq != seq {
		return fusion.Pairing{}, false
	}
	s.valid = false
	return s.p, true
}

// clear drops every pending pairing (flush recovery: sequence numbers are
// re-fetched and re-observed, so stale plans must not survive).
func (r *pairingRing) clear() {
	for i := range r.slots {
		r.slots[i].valid = false
	}
}
