package ooo

import (
	"context"
	"fmt"

	"helios/internal/uop"
)

// CheckInvariants validates the pipeline's internal consistency. It is
// exported for tests (and cheap enough to call between cycles in debug
// runs): structure occupancies within capacity, no physical register both
// free and mapped, RAT entries valid, every in-flight fused µ-op
// well-formed.
func (p *Pipeline) CheckInvariants() error {
	if p.rob.len() > p.cfg.ROBSize {
		return fmt.Errorf("ROB occupancy %d > %d", p.rob.len(), p.cfg.ROBSize)
	}
	if p.aq.len() > p.cfg.AQSize {
		return fmt.Errorf("AQ occupancy %d > %d", p.aq.len(), p.cfg.AQSize)
	}
	if len(p.iq) > p.cfg.IQSize {
		return fmt.Errorf("IQ occupancy %d > %d", len(p.iq), p.cfg.IQSize)
	}
	if len(p.lq) > p.cfg.LQSize {
		return fmt.Errorf("LQ occupancy %d > %d", len(p.lq), p.cfg.LQSize)
	}
	if len(p.sq) > p.cfg.SQSize {
		return fmt.Errorf("SQ occupancy %d > %d", len(p.sq), p.cfg.SQSize)
	}

	// No register is both free and architecturally mapped, and the free
	// list holds no duplicates.
	free := make(map[int32]bool, len(p.freeList))
	for _, r := range p.freeList {
		if r < 0 || int(r) >= p.cfg.PhysRegs {
			return fmt.Errorf("free list holds invalid register %d", r)
		}
		if free[r] {
			return fmt.Errorf("register %d on the free list twice", r)
		}
		free[r] = true
	}
	for arch, r := range p.rat {
		if r < 0 || int(r) >= p.cfg.PhysRegs {
			return fmt.Errorf("RAT[%d] = %d out of range", arch, r)
		}
		if free[r] {
			return fmt.Errorf("RAT[%d] = %d is also on the free list", arch, r)
		}
	}
	for arch, r := range p.cRAT {
		if free[r] {
			return fmt.Errorf("cRAT[%d] = %d is also on the free list", arch, r)
		}
	}

	// ROB entries are in sequence order and fused µ-ops are well-formed.
	var prev uint64
	for i := 0; i < p.rob.len(); i++ {
		u := p.rob.at(i)
		if i > 0 && u.seq <= prev {
			return fmt.Errorf("ROB out of order at %d: %d after %d", i, u.seq, prev)
		}
		prev = u.seq
		if u.st == stKilled || u.st == stCommitted {
			return fmt.Errorf("ROB holds dead µ-op seq=%d st=%d", u.seq, u.st)
		}
		if u.kind != uop.FuseNone && !u.unfused && u.tailR == nil {
			return fmt.Errorf("fused µ-op seq=%d has no tail record", u.seq)
		}
		if u.pendSrcs < 0 || u.pendSrcs > u.numSrc {
			return fmt.Errorf("seq=%d pendSrcs=%d of %d", u.seq, u.pendSrcs, u.numSrc)
		}
		for s := 0; s < int(u.numSrc); s++ {
			r := u.srcPhys[s]
			if r >= 0 && free[r] && u.st == stDispatched {
				return fmt.Errorf("seq=%d reads freed register %d", u.seq, r)
			}
		}
	}

	// Every IQ/LQ/SQ occupant is live and present in the ROB's range.
	for _, q := range []struct {
		name string
		s    []*pUop
	}{{"IQ", p.iq}, {"LQ", p.lq}, {"SQ", p.sq}} {
		for _, u := range q.s {
			if u.st == stKilled {
				return fmt.Errorf("%s holds killed µ-op seq=%d", q.name, u.seq)
			}
			if q.name != "SQ" && u.st == stCommitted {
				return fmt.Errorf("%s holds committed µ-op seq=%d", q.name, u.seq)
			}
		}
	}

	// Pending NCSF heads must still be live, fused and unvalidated.
	for _, h := range p.pendingNCSF {
		if h.st == stKilled || h.unfused || h.validated {
			return fmt.Errorf("stale pending NCSF head seq=%d", h.seq)
		}
	}
	if len(p.pendingNCSF) > p.cfg.MaxNCSFNest {
		return fmt.Errorf("pending NCSF %d exceeds nest limit %d",
			len(p.pendingNCSF), p.cfg.MaxNCSFNest)
	}

	// Top-down slot conservation (DESIGN.md §12): every simulated cycle
	// is accounted and every bucket sum matches DispatchWidth × cycles.
	// Holds at every between-cycle point by construction — Move is
	// sum-preserving, so any misaccounting shows up here.
	if p.st.TopDown.Cycles != p.st.Cycles {
		return fmt.Errorf("top-down accounted %d cycles, pipeline ran %d",
			p.st.TopDown.Cycles, p.st.Cycles)
	}
	if err := p.st.TopDown.CheckConservation(); err != nil {
		return err
	}
	return nil
}

// RunChecked is Run with CheckInvariants called every interval cycles;
// it is the harness used by the failure-injection tests. A violation
// surfaces as a FailInvariant SimError with the snapshot attached.
//
//helios:ctx-ok top-of-stack convenience for tests; the chaos driver uses RunCheckedContext
func (p *Pipeline) RunChecked(interval uint64) (*Stats, error) {
	return p.RunCheckedContext(context.Background(), interval)
}

// RunCheckedContext combines invariant sweeps with cooperative
// cancellation; it is the chaos driver's entry point.
func (p *Pipeline) RunCheckedContext(ctx context.Context, interval uint64) (*Stats, error) {
	if interval == 0 {
		interval = 1
	}
	return p.run(ctx, interval)
}
