package ooo

import (
	"fmt"

	"helios/internal/stats"
	"helios/internal/uop"
)

// Stats accumulates everything the evaluation needs: IPC inputs, per-kind
// fusion counts (Figures 2, 8), structural stall attribution (Figure 9),
// predictor quality inputs (Table III) and pair address categories
// (Figures 4, 5).
type Stats struct {
	Cycles         uint64
	CommittedUops  uint64 // µ-ops leaving the ROB (a fused pair is one µ-op)
	CommittedInsts uint64 // architectural instructions (a fused pair is two)
	CommittedMem   uint64 // architectural memory instructions

	// Fusion counts, committed.
	FusedIdiom      uint64 // non-memory Table I idioms
	FusedMemIdiom   uint64 // load-global / indexed-load (memory-carrying idioms)
	CSFLoadPairs    uint64
	CSFStorePairs   uint64
	NCSFLoadPairs   uint64
	NCSFStorePairs  uint64
	DBRPairs        uint64 // pairs with different architectural base registers
	AsymmetricPairs uint64
	PairsByCategory [6]uint64 // uop.AddrCategory of committed pairs
	DistanceSum     uint64    // head→tail distances of committed NCSF pairs
	UnfusedAtRename uint64    // NCSF undone: deadlock/serializing/store-in-catalyst
	UnfuseReasons   [5]uint64 // window, serializing, store-in-catalyst, dbr-store, deadlock
	NestLimitDrops  uint64    // NCSF abandoned: nesting level saturated

	// Helios predictor quality.
	FusionPredictions uint64 // confident FP predictions acted upon
	FusionMispredicts uint64 // region check failed at execute (case 5)
	UCHMatches        uint64 // eligible pairs discovered at commit (missed fusions)
	FPTrainings       uint64

	// Control flow.
	Branches          uint64
	BranchMispredicts uint64

	// Memory.
	StoreSetViolations uint64
	STLForwards        uint64
	LineCrossingPairs  uint64

	// Structural stalls: cycles in which rename/dispatch could not process
	// a µ-op because of the named resource (attributed once per cycle to
	// the first blocking resource).
	StallFreeList uint64
	StallROB      uint64
	StallIQ       uint64
	StallLQ       uint64
	StallSQ       uint64
	StallAQ       uint64 // fetch blocked by allocation-queue backpressure

	Flushes      uint64
	ChaosFlushes uint64 // forced flushes injected by the chaos hook

	// Debug: cumulative decode-to-resolve latency of mispredicted branches.
	MispredictResolveLat uint64
	MispredictAQLat      uint64
	MispredictIssueLat   uint64

	// Top-down dispatch-slot accounting (DESIGN.md §12): every cycle,
	// all DispatchWidth slots land in exactly one bucket, so the
	// buckets sum to DispatchWidth × Cycles (CheckInvariants enforces
	// it) and an IPC delta decomposes fully into bucket deltas.
	TopDown stats.TopDown

	// Latency distributions (fixed integer buckets, observed at commit,
	// reported as count/mean/P50/P95/P99 in Rows).
	IssueWaitHist     stats.Histogram // rename → issue wait per retired µ-op
	LoadToUseHist     stats.Histogram // issue → complete latency of retired loads
	FlushRecoveryHist stats.Histogram // flush → first subsequent commit
}

// IPC returns committed architectural instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.CommittedInsts) / float64(s.Cycles)
}

// TotalMemPairs returns all committed fused memory pairs.
func (s *Stats) TotalMemPairs() uint64 {
	return s.CSFLoadPairs + s.CSFStorePairs + s.NCSFLoadPairs + s.NCSFStorePairs
}

// CSFPairs returns committed consecutive pairs.
func (s *Stats) CSFPairs() uint64 { return s.CSFLoadPairs + s.CSFStorePairs }

// NCSFPairs returns committed non-consecutive pairs.
func (s *Stats) NCSFPairs() uint64 { return s.NCSFLoadPairs + s.NCSFStorePairs }

// FusedUopFraction returns the fraction of dynamic instructions that were
// part of a fused pair or idiom (Figure 2's metric).
func (s *Stats) FusedUopFraction() float64 {
	if s.CommittedInsts == 0 {
		return 0
	}
	fused := 2 * (s.TotalMemPairs() + s.FusedIdiom + s.FusedMemIdiom)
	return float64(fused) / float64(s.CommittedInsts)
}

// Coverage returns the fraction of predictable pairs the Helios FP
// actually fused: correct predictions over correct predictions plus the
// pairs that still reached Commit unfused (UCH matches).
func (s *Stats) Coverage() float64 {
	correct := s.FusionPredictions - s.FusionMispredicts
	denom := correct + s.UCHMatches
	if denom == 0 {
		return 0
	}
	return float64(correct) / float64(denom)
}

// Accuracy returns the fraction of acted-upon predictions that were
// correct.
func (s *Stats) Accuracy() float64 {
	if s.FusionPredictions == 0 {
		return 1
	}
	return float64(s.FusionPredictions-s.FusionMispredicts) / float64(s.FusionPredictions)
}

// FusionMPKI returns fusion mispredictions per kilo-instruction.
func (s *Stats) FusionMPKI() float64 {
	if s.CommittedInsts == 0 {
		return 0
	}
	return 1000 * float64(s.FusionMispredicts) / float64(s.CommittedInsts)
}

// BranchMPKI returns branch mispredictions per kilo-instruction.
func (s *Stats) BranchMPKI() float64 {
	if s.CommittedInsts == 0 {
		return 0
	}
	return 1000 * float64(s.BranchMispredicts) / float64(s.CommittedInsts)
}

// MeanNCSFDistance returns the mean head→tail distance of committed
// non-consecutive pairs.
func (s *Stats) MeanNCSFDistance() float64 {
	n := s.NCSFPairs()
	if n == 0 {
		return 0
	}
	return float64(s.DistanceSum) / float64(n)
}

// StallCycles returns total structural stall cycles by resource. The
// family is attributed once per cycle (rename charges its first
// blocking resource; fetch charges the AQ only when rename did not
// stall), so the sum never exceeds Cycles.
func (s *Stats) StallCycles() uint64 {
	return s.StallFreeList + s.StallROB + s.StallIQ + s.StallLQ + s.StallSQ + s.StallAQ
}

// Rows enumerates every counter as (name, value) pairs in declaration
// order — the canonical dump surface behind `heliossim -json` and the
// detailed printout. The statscomplete analyzer checks this enumeration
// against the struct, so a counter added to Stats without a row here
// fails lint instead of going silently unreported.
func (s *Stats) Rows() [][2]string {
	u := func(v uint64) string { return fmt.Sprint(v) }
	rows := [][2]string{
		{"cycles", u(s.Cycles)},
		{"committed_uops", u(s.CommittedUops)},
		{"committed_insts", u(s.CommittedInsts)},
		{"committed_mem", u(s.CommittedMem)},
		{"fused_idiom", u(s.FusedIdiom)},
		{"fused_mem_idiom", u(s.FusedMemIdiom)},
		{"csf_load_pairs", u(s.CSFLoadPairs)},
		{"csf_store_pairs", u(s.CSFStorePairs)},
		{"ncsf_load_pairs", u(s.NCSFLoadPairs)},
		{"ncsf_store_pairs", u(s.NCSFStorePairs)},
		{"dbr_pairs", u(s.DBRPairs)},
		{"asymmetric_pairs", u(s.AsymmetricPairs)},
	}
	for i, v := range s.PairsByCategory {
		rows = append(rows, [2]string{
			fmt.Sprintf("pairs_by_category[%s]", uop.AddrCategory(i)), u(v)})
	}
	rows = append(rows, [][2]string{
		{"distance_sum", u(s.DistanceSum)},
		{"unfused_at_rename", u(s.UnfusedAtRename)},
	}...)
	for i, v := range s.UnfuseReasons {
		reasons := [5]string{"window", "serializing", "store-in-catalyst", "dbr-store", "deadlock"}
		rows = append(rows, [2]string{
			fmt.Sprintf("unfuse_reasons[%s]", reasons[i]), u(v)})
	}
	rows = append(rows, [][2]string{
		{"nest_limit_drops", u(s.NestLimitDrops)},
		{"fusion_predictions", u(s.FusionPredictions)},
		{"fusion_mispredicts", u(s.FusionMispredicts)},
		{"uch_matches", u(s.UCHMatches)},
		{"fp_trainings", u(s.FPTrainings)},
		{"branches", u(s.Branches)},
		{"branch_mispredicts", u(s.BranchMispredicts)},
		{"store_set_violations", u(s.StoreSetViolations)},
		{"stl_forwards", u(s.STLForwards)},
		{"line_crossing_pairs", u(s.LineCrossingPairs)},
		{"stall_free_list", u(s.StallFreeList)},
		{"stall_rob", u(s.StallROB)},
		{"stall_iq", u(s.StallIQ)},
		{"stall_lq", u(s.StallLQ)},
		{"stall_sq", u(s.StallSQ)},
		{"stall_aq", u(s.StallAQ)},
		{"flushes", u(s.Flushes)},
		{"chaos_flushes", u(s.ChaosFlushes)},
		{"mispredict_resolve_lat", u(s.MispredictResolveLat)},
		{"mispredict_aq_lat", u(s.MispredictAQLat)},
		{"mispredict_issue_lat", u(s.MispredictIssueLat)},
	}...)
	rows = append(rows, s.TopDown.Rows("topdown")...)
	rows = append(rows, s.IssueWaitHist.Rows("issue_wait")...)
	rows = append(rows, s.LoadToUseHist.Rows("load_to_use")...)
	return append(rows, s.FlushRecoveryHist.Rows("flush_recovery")...)
}
