#!/usr/bin/env bash
# heliosd end-to-end smoke: build the server and client, start the
# server, drive every endpoint plus the hostile-input taxonomy through
# heliosctl, then SIGTERM the server mid-flight and assert a clean
# drain (client request completes, server exits 0, manifests flushed).
#
# Mirrors the CI heliosd-smoke job; run locally via `make serve-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${HELIOSD_SMOKE_PORT:-18080}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/heliosd" ./cmd/heliosd
go build -o "$WORK/heliosctl" ./cmd/heliosctl
CTL=("$WORK/heliosctl" -server "$BASE")

echo "== start heliosd"
# Small -max-body so the oversized probe stays within shell arg limits;
# small -insts keeps every simulation sub-second.
"$WORK/heliosd" -addr "$ADDR" -insts 5000 -max-body 2048 \
  -manifest-dir "$WORK/manifests" -drain 30s 2>"$WORK/heliosd.log" &
SERVER_PID=$!
"${CTL[@]}" health -wait 15s >/dev/null
echo "ok: healthy"

echo "== run (miss, then content-cache hit)"
FIRST="$("${CTL[@]}" run -workload crc32 -mode Helios)"
grep -q '"cached":false' <<<"$FIRST" || { echo "FAIL: first run claims cached"; exit 1; }
SECOND="$("${CTL[@]}" run -workload crc32 -mode Helios)"
grep -q '"cached":true' <<<"$SECOND" || { echo "FAIL: repeat run was not a cache hit"; exit 1; }
KEY1="$(grep -o '"key":"[a-f0-9]*"' <<<"$FIRST")"
KEY2="$(grep -o '"key":"[a-f0-9]*"' <<<"$SECOND")"
[ "$KEY1" = "$KEY2" ] || { echo "FAIL: content keys differ across identical requests"; exit 1; }
echo "ok: content-addressed cache"

echo "== suite + diff"
"${CTL[@]}" suite -workloads crc32,sha -modes NoFusion,Helios | grep -q '"cells"' \
  || { echo "FAIL: suite response has no cells"; exit 1; }
"${CTL[@]}" diff -workloads crc32 -baseline NoFusion -target Helios | grep -q 'Differential report' \
  || { echo "FAIL: diff did not render"; exit 1; }
echo "ok: suite + diff"

echo "== hostile inputs: typed errors, correct statuses"
"${CTL[@]}" raw -path /v1/run -body '{"workload": nope}' -expect 400 | grep -q '"kind":"bad-request"' \
  || { echo "FAIL: malformed JSON not a typed 400"; exit 1; }
"${CTL[@]}" raw -path /v1/run -body '{"workload":"no_such_kernel"}' -expect 400 >/dev/null
"${CTL[@]}" raw -path /v1/run -body "{\"workload\":\"$(printf 'a%.0s' $(seq 1 4000))\"}" -expect 413 \
  | grep -q '"kind":"oversized"' || { echo "FAIL: oversized body not a typed 413"; exit 1; }
echo "ok: typed 400/413"

echo "== SIGTERM mid-flight drains cleanly"
# Park a fresh (uncached) request in flight, then signal the server.
"${CTL[@]}" -retries 0 run -workload qsort -mode NoFusion >"$WORK/inflight.json" &
CLIENT_PID=$!
sleep 0.1
kill -TERM "$SERVER_PID"
wait "$CLIENT_PID" || { echo "FAIL: in-flight request died during drain"; cat "$WORK/inflight.json"; exit 1; }
grep -q '"ipc"' "$WORK/inflight.json" || { echo "FAIL: drained request has no result"; exit 1; }
wait "$SERVER_PID" || { echo "FAIL: heliosd exited non-zero"; cat "$WORK/heliosd.log"; exit 1; }
grep -q 'drained clean' "$WORK/heliosd.log" || { echo "FAIL: no clean-drain log line"; exit 1; }
N_MANIFESTS="$(ls "$WORK/manifests" | wc -l)"
[ "$N_MANIFESTS" -ge 1 ] || { echo "FAIL: no manifests flushed"; exit 1; }
echo "ok: clean drain, exit 0, $N_MANIFESTS manifest(s) flushed"

echo "heliosd smoke: ALL OK"
