#!/usr/bin/env bash
# heliosd telemetry end-to-end smoke: start the server with span tracing
# on, drive a cached + uncached + observed request mix, then assert the
# whole observability surface works on real processes:
#
#   - GET /metricz Prometheus exposition passes the repo's own
#     promtool-shaped linter (heliosctl metrics -prom -lint)
#   - heliosctl metrics -watch polls without breaking
#   - the obs artifact a client fetches (heliosctl run -obs) is
#     byte-identical to heliossim's output for the same
#     workload/config/budget — the replay-determinism contract
#   - GET /tracez yields a Perfetto-loadable Chrome trace with spans
#     (kept as $WORK/tracez.json; CI uploads it as a build artifact)
#   - per-request trace files land in -trace-dir
#   - the server still drains cleanly with telemetry enabled
#
# A second leg restarts heliosd with tail sampling (-sample) and a warm
# cache directory, then proves the triage pipeline on real processes:
# `heliosctl triage` surfaces the injected error with a trace deep
# link, `heliosctl trace -id` resolves it, the OpenMetrics exposition
# carries `# {trace_id=...}` exemplars and passes `metrics -om -lint`
# (including exemplar→/tracez resolution), and a third boot on the same
# -cache-dir serves the first request as a warm cache hit.
#
# Mirrors the CI telemetry-smoke job; run locally via `make telemetry-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:${HELIOSD_TELEMETRY_SMOKE_PORT:-18081}"
BASE="http://$ADDR"
WORK="${TELEMETRY_SMOKE_WORK:-$(mktemp -d)}"
mkdir -p "$WORK"
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

echo "== build"
go build -o "$WORK/heliosd" ./cmd/heliosd
go build -o "$WORK/heliosctl" ./cmd/heliosctl
go build -o "$WORK/heliossim" ./cmd/heliossim
CTL=("$WORK/heliosctl" -server "$BASE")

echo "== start heliosd (telemetry on)"
"$WORK/heliosd" -addr "$ADDR" -insts 5000 -trace-dir "$WORK/traces" \
  -span-log "$WORK/spans.ndjson" -drain 30s 2>"$WORK/heliosd.log" &
SERVER_PID=$!
"${CTL[@]}" health -wait 15s >/dev/null
echo "ok: healthy"

echo "== request mix: uncached, cached, observed"
"${CTL[@]}" run -workload crc32 -mode Helios | grep -q '"cached":false' \
  || { echo "FAIL: first run claims cached"; exit 1; }
"${CTL[@]}" run -workload crc32 -mode Helios | grep -q '"cached":true' \
  || { echo "FAIL: repeat run was not a cache hit"; exit 1; }
"${CTL[@]}" run -workload sha -mode NoFusion -obs pipeview -obs-out "$WORK/server.pipeview" \
  | grep -q '"sha256"' || { echo "FAIL: obs run returned no artifact digest"; exit 1; }
echo "ok: mix served"

echo "== obs artifact is byte-identical to heliossim"
"$WORK/heliossim" -workload sha -mode NoFusion -insts 5000 \
  -pipeview "$WORK/local.pipeview" >/dev/null
cmp "$WORK/server.pipeview" "$WORK/local.pipeview" \
  || { echo "FAIL: server artifact differs from heliossim -pipeview"; exit 1; }
echo "ok: byte-identical pipeview ($(wc -c <"$WORK/server.pipeview") bytes)"

echo "== Prometheus exposition lints clean"
"${CTL[@]}" metrics -prom -lint >"$WORK/metricz.prom"
grep -q '^heliosd_requests_admitted_total ' "$WORK/metricz.prom" \
  || { echo "FAIL: exposition lacks admitted counter"; exit 1; }
grep -q '^heliosd_span_duration_microseconds_bucket' "$WORK/metricz.prom" \
  || { echo "FAIL: exposition lacks span histograms"; exit 1; }
grep -q '^heliosd_request_duration_microseconds_bucket' "$WORK/metricz.prom" \
  || { echo "FAIL: exposition lacks latency histogram"; exit 1; }
echo "ok: exposition linted"

echo "== metrics -watch polls"
"${CTL[@]}" metrics -watch 200ms -count 2 >"$WORK/watch.json"
[ "$(grep -c '"latency_us"' "$WORK/watch.json")" -eq 2 ] \
  || { echo "FAIL: -watch did not produce 2 samples"; exit 1; }
echo "ok: watch mode"

echo "== tracez: Perfetto-loadable span trace"
"${CTL[@]}" trace -out "$WORK/tracez.json"
grep -q '"traceEvents"' "$WORK/tracez.json" || { echo "FAIL: no traceEvents"; exit 1; }
grep -q '"ph":"X"' "$WORK/tracez.json" || { echo "FAIL: no complete span events"; exit 1; }
for span in admission cache_read batch_wait record replay; do
  grep -q "\"name\":\"$span\"" "$WORK/tracez.json" \
    || { echo "FAIL: tracez lacks a $span span"; exit 1; }
done
N_TRACE_FILES="$(ls "$WORK/traces" | wc -l)"
[ "$N_TRACE_FILES" -ge 3 ] || { echo "FAIL: trace-dir has $N_TRACE_FILES files, want >=3"; exit 1; }
grep -q '"type":"span"' "$WORK/spans.ndjson" || { echo "FAIL: span log is empty"; exit 1; }
echo "ok: tracez + $N_TRACE_FILES trace files + span log"

echo "== SIGTERM drains cleanly with telemetry on"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: heliosd exited non-zero"; cat "$WORK/heliosd.log"; exit 1; }
grep -q 'drained clean' "$WORK/heliosd.log" || { echo "FAIL: no clean-drain log line"; exit 1; }
echo "ok: clean drain"

echo "== sampling leg: restart with -sample and a warm cache dir"
"$WORK/heliosd" -addr "$ADDR" -insts 5000 -sample -sample-rate 5 -sample-burst 5 \
  -cache-dir "$WORK/cache" -flight 64 -drain 30s 2>"$WORK/heliosd2.log" &
SERVER_PID=$!
"${CTL[@]}" health -wait 15s >/dev/null
"${CTL[@]}" run -workload crc32 -mode Helios >/dev/null
"${CTL[@]}" run -workload crc32 -mode Helios >/dev/null
"${CTL[@]}" run -workload sha -mode NoFusion >/dev/null
if "${CTL[@]}" run -workload no_such_kernel >/dev/null 2>&1; then
  echo "FAIL: unknown-workload request unexpectedly succeeded"; exit 1
fi
echo "ok: sampled traffic served (3 runs + 1 injected error)"

echo "== triage surfaces the error with a trace deep link"
"${CTL[@]}" triage -outcome error -json >"$WORK/triage.json"
grep -q '"outcome":"bad-request"' "$WORK/triage.json" \
  || { echo "FAIL: triage does not show the bad-request"; cat "$WORK/triage.json"; exit 1; }
TID="$(sed -n 's/.*"trace_id":\([0-9][0-9]*\).*/\1/p' "$WORK/triage.json" | head -1)"
[ -n "$TID" ] || { echo "FAIL: error entry carries no trace_id"; cat "$WORK/triage.json"; exit 1; }
"${CTL[@]}" trace -id "$TID" -out "$WORK/error_trace.json"
grep -q '"traceEvents"' "$WORK/error_trace.json" \
  || { echo "FAIL: trace -id $TID returned no Chrome trace"; exit 1; }
"${CTL[@]}" triage -min-ms 1 | grep -q sha \
  || { echo "FAIL: triage -min-ms does not surface the slow uncached sha run"; exit 1; }
echo "ok: triage -> trace $TID resolves; -min-ms finds the slow run"

echo "== OpenMetrics exposition: exemplars, lint, retention consistency"
"${CTL[@]}" metrics -om -lint >"$WORK/metricz.om"
grep -q '# {trace_id=' "$WORK/metricz.om" \
  || { echo "FAIL: OM exposition carries no exemplars"; exit 1; }
grep -q '^# EOF' "$WORK/metricz.om" || { echo "FAIL: OM exposition lacks # EOF"; exit 1; }
grep -q '^heliosd_traces_sampled_kept_total ' "$WORK/metricz.om" \
  || { echo "FAIL: exposition lacks sampling counters"; exit 1; }
echo "ok: OM exemplars linted (incl. exemplar->tracez resolution)"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: sampled heliosd exited non-zero"; cat "$WORK/heliosd2.log"; exit 1; }

echo "== warm restart serves yesterday's results as cache hits"
N_MANIFESTS="$(ls "$WORK/cache" | wc -l)"
[ "$N_MANIFESTS" -ge 2 ] || { echo "FAIL: cache dir has $N_MANIFESTS manifests, want >=2"; exit 1; }
"$WORK/heliosd" -addr "$ADDR" -insts 5000 -cache-dir "$WORK/cache" \
  -drain 30s 2>"$WORK/heliosd3.log" &
SERVER_PID=$!
"${CTL[@]}" health -wait 15s >/dev/null
"${CTL[@]}" run -workload crc32 -mode Helios | grep -q '"cached":true' \
  || { echo "FAIL: first request after warm boot was not a cache hit"; exit 1; }
"${CTL[@]}" metrics -prom | grep -q '^heliosd_cache_warm_entries [1-9]' \
  || { echo "FAIL: warm-entries gauge is zero after warm boot"; exit 1; }
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: warm heliosd exited non-zero"; cat "$WORK/heliosd3.log"; exit 1; }
echo "ok: warm boot ($N_MANIFESTS manifests restored)"

echo "telemetry smoke: ALL OK (trace artifact: $WORK/tracez.json)"
