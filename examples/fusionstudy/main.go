// Fusionstudy: sweep the fusion design space on one workload — the five
// paper configurations, the NCSF nesting depth, and the maximum fusion
// distance — reproducing the kind of ablation Section IV discusses.
//
// Run with: go run ./examples/fusionstudy [workload]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"helios/internal/core"
	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/stats"
	"helios/internal/workloads"
)

func main() {
	ctx := context.Background()
	name := "xz"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, ok := workloads.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q (have %v)", name, workloads.Names())
	}

	// 1. The paper's five configurations.
	t := stats.NewTable(fmt.Sprintf("%s: fusion configurations", name),
		"config", "IPC", "speedup", "pairs", "sq stall%")
	var base float64
	for _, m := range fusion.Modes {
		r, err := core.Run(ctx, w, m, 0)
		if err != nil {
			log.Fatal(err)
		}
		s := r.Stats
		if m == fusion.ModeNoFusion {
			base = s.IPC()
		}
		t.AddRow(m.String(), stats.F(s.IPC(), 3),
			stats.Pct(s.IPC()/base-1, 1),
			fmt.Sprint(s.TotalMemPairs()),
			stats.Pct(float64(s.StallSQ)/float64(s.Cycles), 1))
	}
	fmt.Println(t)

	// 2. NCSF nesting depth ablation (the paper chose 2).
	t2 := stats.NewTable("Helios: NCSF nesting depth ablation",
		"nest levels", "IPC", "ncsf pairs", "nest-limit drops")
	for _, nest := range []int{1, 2, 4, 8} {
		cfg := ooo.DefaultConfig(fusion.ModeHelios)
		cfg.MaxNCSFNest = nest
		r, err := core.RunConfig(ctx, w, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRow(fmt.Sprint(nest), stats.F(r.Stats.IPC(), 3),
			fmt.Sprint(r.Stats.NCSFPairs()), fmt.Sprint(r.Stats.NestLimitDrops))
	}
	fmt.Println(t2)

	// 3. Maximum fusion distance ablation (the paper allows 64 µ-ops).
	t3 := stats.NewTable("Helios: maximum fusion distance ablation",
		"max distance", "IPC", "ncsf pairs", "mean distance")
	for _, dist := range []int{4, 16, 64} {
		cfg := ooo.DefaultConfig(fusion.ModeHelios)
		cfg.PairCfg.MaxDist = dist
		r, err := core.RunConfig(ctx, w, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		t3.AddRow(fmt.Sprint(dist), stats.F(r.Stats.IPC(), 3),
			fmt.Sprint(r.Stats.NCSFPairs()), stats.F(r.Stats.MeanNCSFDistance(), 1))
	}
	fmt.Println(t3)
}
