// Customworkload: bring your own RISC-V assembly. Reads a .s file (or uses
// a built-in matrix-transpose kernel), verifies it functionally, then runs
// the full fusion comparison on it — the workflow for adding a new
// benchmark to the suite.
//
// Run with: go run ./examples/customworkload [file.s]
package main

import (
	"fmt"
	"log"
	"os"

	"helios/internal/asm"
	"helios/internal/emu"
	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/stats"
	"helios/internal/trace"
)

// A blocked 64x64 matrix transpose: each block row copy is a run of loads
// and stores at small strides, a good playground for pair fusion.
const defaultKernel = `
	.data
src:
	.zero 32768      # 64 x 64 dwords
dstm:
	.zero 32768
	.text
_start:
	la s0, src
	la s1, dstm
	li s2, 64        # N

	# Fill the source.
	mv t0, s0
	li t1, 7
	li t2, 32768
	add t2, s0, t2
fill:
	sd t1, 0(t0)
	addi t1, t1, 13
	addi t0, t0, 8
	bltu t0, t2, fill

	li s7, 12        # repetitions
rep:
	li s3, 0         # row
rowloop:
	li s4, 0         # col
	mul t3, s3, s2
	slli t3, t3, 3
	add t3, s0, t3   # &src[row][0]
colloop:
	ld a0, 0(t3)
	ld a1, 8(t3)     # contiguous load pair
	# dst[col][row] and dst[col+1][row]
	mul t4, s4, s2
	add t4, t4, s3
	slli t4, t4, 3
	add t4, s1, t4
	sd a0, 0(t4)
	slli t5, s2, 3
	add t4, t4, t5
	sd a1, 0(t4)
	addi t3, t3, 16
	addi s4, s4, 2
	blt s4, s2, colloop
	addi s3, s3, 1
	blt s3, s2, rowloop
	addi s7, s7, -1
	bnez s7, rep

	li a7, 93
	li a0, 0
	ecall
`

func main() {
	src := defaultKernel
	name := "matrix-transpose (built-in)"
	if len(os.Args) > 1 {
		b, err := os.ReadFile(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		src = string(b)
		name = os.Args[1]
	}

	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}

	// Functional verification first: the kernel must halt cleanly.
	m := emu.New(prog)
	n, err := m.Run(10_000_000)
	if err != nil {
		log.Fatalf("functional run: %v", err)
	}
	if !m.Halted() {
		log.Fatalf("kernel did not halt within 10M instructions")
	}
	fmt.Printf("%s: %d dynamic instructions, exit=%d\n\n", name, n, m.ExitCode())

	// Record the committed stream once; every configuration replays it.
	rec, err := trace.Record(trace.NewLive(emu.New(prog), 0))
	if err != nil {
		log.Fatalf("record: %v", err)
	}

	t := stats.NewTable("fusion comparison", "config", "IPC", "speedup",
		"csf", "ncsf", "idioms", "accuracy")
	var base float64
	for _, mode := range fusion.Modes {
		p := ooo.New(ooo.DefaultConfig(mode), rec.Replay())
		st, err := p.Run()
		if err != nil {
			log.Fatal(err)
		}
		if mode == fusion.ModeNoFusion {
			base = st.IPC()
		}
		t.AddRow(mode.String(), stats.F(st.IPC(), 3), stats.Pct(st.IPC()/base-1, 1),
			fmt.Sprint(st.CSFPairs()), fmt.Sprint(st.NCSFPairs()),
			fmt.Sprint(st.FusedIdiom+st.FusedMemIdiom), stats.Pct(st.Accuracy(), 1))
	}
	fmt.Println(t)
}
