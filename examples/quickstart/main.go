// Quickstart: assemble a small RISC-V program, execute it functionally,
// then simulate it on the out-of-order core with and without Helios
// fusion and compare.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"helios/internal/asm"
	"helios/internal/emu"
	"helios/internal/fusion"
	"helios/internal/ooo"
	"helios/internal/trace"
)

// A loop that sums an array of 16-byte records: the two field loads are
// contiguous (consecutive fusion catches them) and the per-record checksum
// stores land in the same line one iteration apart (Helios catches those).
const program = `
	.data
recs:
	.zero 16384      # 1024 records x 16 bytes
sums:
	.zero 8192
	.text
_start:
	la s0, recs
	la s1, sums
	li s2, 1024      # records

	# Initialise the records.
	mv t0, s0
	li t1, 1
	li t2, 16384
	add t2, s0, t2
init:
	sd t1, 0(t0)
	slli t3, t1, 1
	sd t3, 8(t0)
	addi t1, t1, 3
	addi t0, t0, 16
	bltu t0, t2, init

	# Sum pass: load pair + checksum store.
	li s3, 40        # passes
	li s4, 0         # checksum
pass:
	mv t0, s0
	mv t4, s1
	li t5, 0
sum:
	ld a0, 0(t0)     # field a
	ld a1, 8(t0)     # field b: contiguous pair
	add a2, a0, a1
	add s4, s4, a2
	sd a2, 0(t4)
	addi t0, t0, 16
	addi t4, t4, 8
	addi t5, t5, 1
	blt t5, s2, sum
	addi s3, s3, -1
	bnez s3, pass

	li a7, 93
	li a0, 0
	ecall
`

func main() {
	// 1. Assemble.
	prog, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled: %d instructions, %d data bytes\n", len(prog.Text), len(prog.Data))

	// 2. Execute functionally (like Spike) to check the program behaves.
	m := emu.New(prog)
	n, err := m.Run(2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional run: %d instructions, exit=%d\n\n", n, m.ExitCode())

	// 3. Record the committed stream once, then replay it on the
	// Icelake-like core under two fusion configs (the stream is identical
	// for every config, so one emulation feeds both runs).
	rec, err := trace.Record(trace.NewLive(emu.New(prog), 0))
	if err != nil {
		log.Fatal(err)
	}
	run := func(mode fusion.Mode) *ooo.Stats {
		p := ooo.New(ooo.DefaultConfig(mode), rec.Replay())
		st, err := p.Run()
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	base := run(fusion.ModeNoFusion)
	hel := run(fusion.ModeHelios)

	fmt.Printf("%-22s %12s %12s\n", "", "NoFusion", "Helios")
	fmt.Printf("%-22s %12d %12d\n", "cycles", base.Cycles, hel.Cycles)
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", base.IPC(), hel.IPC())
	fmt.Printf("%-22s %12d %12d\n", "consecutive pairs", base.CSFPairs(), hel.CSFPairs())
	fmt.Printf("%-22s %12d %12d\n", "non-consecutive pairs", base.NCSFPairs(), hel.NCSFPairs())
	fmt.Printf("\nspeedup from fusion: %.1f%%\n", 100*(hel.IPC()/base.IPC()-1))
}
