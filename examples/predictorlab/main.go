// Predictorlab: drive the Helios predictor structures (UCH + tournament
// FP) directly on synthetic committed-µ-op streams, showing how pairs are
// discovered at Commit, how confidence builds, and how the global
// component disambiguates history-dependent distances.
//
// Run with: go run ./examples/predictorlab
package main

import (
	"fmt"

	"helios/internal/helios"
)

func main() {
	fmt.Println("=== 1. UCH pair discovery ===")
	uch := helios.NewUCH()
	// A loop body with two same-line loads five µ-ops apart, repeated.
	seq := uint64(0)
	for iter := 0; iter < 3; iter++ {
		line := uint64(0x1000 + iter) // a different line each iteration
		if d, found := uch.ObserveLoad(line, seq); found {
			fmt.Printf("  iter %d: unexpected early match d=%d\n", iter, d)
		}
		seq += 5
		if d, found := uch.ObserveLoad(line, seq); found {
			fmt.Printf("  iter %d: head found %d µ-ops back -> train the FP\n", iter, d)
		}
		seq += 5
	}

	fmt.Println("\n=== 2. FP confidence build-up ===")
	fp := helios.NewFP()
	pc := uint64(0x4242)
	for i := 1; i <= 4; i++ {
		fp.Train(pc, 0, 5)
		p, ok := fp.Predict(pc, 0)
		fmt.Printf("  after %d trainings: hit=%v distance=%d confident=%v\n",
			i, ok, p.Distance, p.Confident)
	}

	fmt.Println("\n=== 3. Misprediction resets confidence ===")
	p, _ := fp.Predict(pc, 0)
	fp.Mispredict(pc, 0, p)
	p, _ = fp.Predict(pc, 0)
	fmt.Printf("  after mispredict: distance=%d confident=%v (must re-earn trust)\n",
		p.Distance, p.Confident)

	fmt.Println("\n=== 4. Tournament: history-dependent distances ===")
	fp2 := helios.NewFP()
	loadPC := uint64(0x8000)
	ghrTaken, ghrNot := uint64(0b1111), uint64(0b0000)
	// Under one control path the load fuses 3 back; under the other, 9.
	for i := 0; i < 8; i++ {
		fp2.Train(loadPC, ghrTaken, 3)
		fp2.Train(loadPC, ghrNot, 9)
	}
	a, _ := fp2.Predict(loadPC, ghrTaken)
	b, _ := fp2.Predict(loadPC, ghrNot)
	fmt.Printf("  taken path:     distance=%d confident=%v\n", a.Distance, a.Confident)
	fmt.Printf("  not-taken path: distance=%d confident=%v\n", b.Distance, b.Confident)
	fmt.Println("  (the gshare-like component keeps both, where a PC-only table would thrash)")

	fmt.Println("\n=== 5. Probabilistic confidence counters (Riley & Zilles) ===")
	// The paper suggests trading coverage for accuracy with probabilistic
	// counters: increments only succeed with probability 1/2^k, so trust
	// is earned (and lost) more slowly.
	prob := helios.NewFPWith(helios.FPConfig{ProbShift: 3})
	trainings := 0
	for {
		trainings++
		prob.Train(0xabc0, 0, 7)
		if p, ok := prob.Predict(0xabc0, 0); ok && p.Confident {
			break
		}
	}
	fmt.Printf("  deterministic FP saturates after 3 trainings; ProbShift=3 took %d\n", trainings)

	fmt.Println("\n=== 6. Storage budget (Section IV-B7) ===")
	c := helios.Cost(helios.PaperParams())
	fmt.Printf("  NCSF pipeline support: %5d bits (paper: ~4.77 Kbit)\n", c.NCSFBits())
	fmt.Printf("  fusion predictor:      %5d bits (paper: 72 Kbit)\n", c.FusionPredictor)
	fmt.Printf("  total:                 %5d bits (paper: ~76.77 Kbit)\n", c.TotalBits())
	fmt.Printf("  with flush pointers:   %5d bits (paper: ~83 Kbit)\n", c.TotalWithFlushBits())
}
